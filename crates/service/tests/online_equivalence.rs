//! The service-level determinism contract: **a request stream fed through
//! the in-process [`RequestSource`] yields a schedule byte-identical to the
//! same stream replayed as an offline trace**, across Sync and Pipelined
//! engine modes.
//!
//! Like the engine-level pipeline tests, the generated streams are
//! adversarial for event ordering: submit times sit on a coarse grid so
//! arrivals collide exactly with scheduling rounds, decision `Ready`
//! events, and completions — the ties where the online driver's split
//! sequence bands and watermark rule are the only things keeping the
//! replay identical.

use proptest::prelude::*;
use waterwise_cluster::{
    EngineMode, Scheduler, SchedulingContext, SchedulingDecision, SimulationConfig,
    SimulationReport, Simulator,
};
use waterwise_core::{build_scheduler, SchedulerKind, WaterWiseConfig};
use waterwise_service::{
    channel_source, PlacementRequest, PlacementResponse, PlacementService, ServiceConfig,
    ServiceReport,
};
use waterwise_sustain::{FootprintEstimator, KilowattHours, Seconds};
use waterwise_telemetry::{Region, SyntheticTelemetry, TelemetryConfig, ALL_REGIONS};
use waterwise_traces::{Benchmark, JobId, JobSpec};

const TELEMETRY_SEED: u64 = 7;

fn job(id: u64, submit: f64, exec: f64, home: Region, bytes: u64) -> JobSpec {
    JobSpec {
        id: JobId(id),
        benchmark: Benchmark::Dedup,
        submit_time: Seconds::new(submit),
        home_region: home,
        actual_execution_time: Seconds::new(exec),
        actual_energy: KilowattHours::new(0.01),
        estimated_execution_time: Seconds::new(exec),
        estimated_energy: KilowattHours::new(0.01),
        package_bytes: bytes,
    }
}

/// The same deterministic scheduler family as the engine's pipeline
/// equivalence tests: home placement, pinning, rotation, partial
/// assignment, periodic deferral. Stateful on purpose — the online and
/// offline runs must present it the identical context sequence.
struct VariedScheduler {
    variant: usize,
    round: usize,
}

impl Scheduler for VariedScheduler {
    fn name(&self) -> &str {
        "varied"
    }
    fn schedule(&mut self, ctx: &SchedulingContext<'_>) -> SchedulingDecision {
        self.round += 1;
        match self.variant {
            0 => SchedulingDecision::from_pairs(
                ctx.pending.iter().map(|p| (p.spec.id, p.spec.home_region)),
            ),
            1 => SchedulingDecision::from_pairs(
                ctx.pending.iter().map(|p| (p.spec.id, Region::Zurich)),
            ),
            2 => SchedulingDecision::from_pairs(ctx.pending.iter().map(|p| {
                let region = ALL_REGIONS[(p.spec.id.0 as usize + self.round) % ALL_REGIONS.len()];
                (p.spec.id, region)
            })),
            3 => SchedulingDecision::from_pairs(
                ctx.pending
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % 2 == 0)
                    .map(|(_, p)| (p.spec.id, p.spec.home_region)),
            ),
            _ => {
                if self.round.is_multiple_of(3) {
                    SchedulingDecision::defer_all()
                } else {
                    SchedulingDecision::from_pairs(
                        ctx.pending.iter().map(|p| (p.spec.id, p.spec.home_region)),
                    )
                }
            }
        }
    }
}

fn simulation_config(servers: usize, engine: EngineMode) -> SimulationConfig {
    SimulationConfig::paper_default(servers, 0.5).with_engine_mode(engine)
}

/// Feed `jobs` (already sorted by submit time) through the in-process
/// source of a service with the given engine mode.
fn serve_stream(
    jobs: &[JobSpec],
    servers: usize,
    engine: EngineMode,
    variant: usize,
) -> (ServiceReport, Vec<PlacementResponse>) {
    let config = ServiceConfig::new(
        simulation_config(servers, engine),
        TelemetryConfig {
            seed: TELEMETRY_SEED,
            ..TelemetryConfig::default()
        },
    );
    let service = PlacementService::new(config).unwrap();
    let (sender, source) = channel_source(4);
    std::thread::scope(|scope| {
        scope.spawn(move || {
            for spec in jobs.iter().cloned() {
                if sender.submit(PlacementRequest::new(spec)).is_err() {
                    break;
                }
            }
        });
        service
            .serve_collect(source, &mut VariedScheduler { variant, round: 0 })
            .unwrap()
    })
}

fn replay_offline(jobs: &[JobSpec], servers: usize, variant: usize) -> SimulationReport {
    let simulator = Simulator::new(
        simulation_config(servers, EngineMode::Sync),
        SyntheticTelemetry::with_seed(TELEMETRY_SEED),
    )
    .unwrap();
    simulator
        .run(jobs, &mut VariedScheduler { variant, round: 0 })
        .unwrap()
}

fn assert_identical(online: &ServiceReport, offline: &SimulationReport) {
    assert_eq!(
        online.report.outcomes, offline.outcomes,
        "schedule diverged"
    );
    assert_eq!(
        online.report.makespan, offline.makespan,
        "makespan diverged"
    );
    assert_eq!(
        format!("{:?}", online.report.summary.without_wall_clock()),
        format!("{:?}", offline.summary.without_wall_clock()),
        "summaries diverged"
    );
    assert_eq!(online.report.overhead.len(), offline.overhead.len());
    for (a, b) in online.report.overhead.iter().zip(&offline.overhead) {
        assert_eq!(a.sim_time, b.sim_time, "round cadence diverged");
        assert_eq!(a.batch_size, b.batch_size, "round batches diverged");
        assert_eq!(a.solver, b.solver, "per-round solver work diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Online == offline on tie-heavy request streams across scheduler
    /// behaviors, engine modes, and capacity pressure.
    #[test]
    fn online_ingestion_is_byte_identical_to_offline_replay(
        raw in prop::collection::vec((0u64..30, 1u64..20, 0usize..5, 1u64..200_000_000), 1..30),
        servers in 1usize..6,
        variant in 0usize..5,
        workers in 0usize..3,
    ) {
        // Coarse grids (multiples of 30 s and 45 s) force exact-timestamp
        // collisions with the 60 s scheduling rounds. The stream must be
        // non-decreasing in submit time (the discrete clock's contract),
        // so sort while keeping receipt order stable within ties.
        let mut jobs: Vec<JobSpec> = raw
            .iter()
            .enumerate()
            .map(|(i, &(s, e, r, bytes))| {
                job(i as u64, s as f64 * 30.0, e as f64 * 45.0, ALL_REGIONS[r], bytes)
            })
            .collect();
        jobs.sort_by(|a, b| a.submit_time.value().total_cmp(&b.submit_time.value()));

        let engine = if workers == 0 {
            EngineMode::Sync
        } else {
            EngineMode::Pipelined { workers }
        };
        let (online, responses) = serve_stream(&jobs, servers, engine, variant);
        let offline = replay_offline(&jobs, servers, variant);

        prop_assert_eq!(&online.trace, &jobs, "discrete stamps must keep the stream");
        assert_identical(&online, &offline);
        prop_assert_eq!(online.accepted, jobs.len());
        prop_assert_eq!(online.rejected, 0);
        prop_assert_eq!(online.served, jobs.len());
        prop_assert_eq!(responses.len(), jobs.len());

        // Every response agrees with the schedule the campaign recorded.
        for response in &responses {
            let outcome = offline
                .outcomes
                .iter()
                .find(|o| o.job == response.job)
                .expect("response for a job the schedule knows");
            prop_assert_eq!(response.region, outcome.executed_region);
        }
    }
}

/// The full WaterWise scheduler (MILP + warm starts) through the service:
/// expensive, so a fixed stream rather than a property, but it covers the
/// solver stage plus a stateful scheduler end-to-end in both engine modes.
#[test]
fn waterwise_scheduler_is_byte_identical_online_across_engine_modes() {
    let jobs: Vec<JobSpec> = (0..10)
        .map(|i| {
            job(
                i,
                (i / 2) as f64 * 30.0,
                300.0 + (i % 3) as f64 * 45.0,
                ALL_REGIONS[(i % 5) as usize],
                1 << 20,
            )
        })
        .collect();
    let servers = 2;

    let make_scheduler = || {
        build_scheduler(
            SchedulerKind::WaterWise,
            SyntheticTelemetry::with_seed(TELEMETRY_SEED).shared(),
            FootprintEstimator::new(simulation_config(servers, EngineMode::Sync).datacenter),
            &WaterWiseConfig::default(),
            None,
        )
    };

    let simulator = Simulator::new(
        simulation_config(servers, EngineMode::Sync),
        SyntheticTelemetry::with_seed(TELEMETRY_SEED),
    )
    .unwrap();
    let offline = simulator.run(&jobs, make_scheduler().as_mut()).unwrap();

    for engine in [EngineMode::Sync, EngineMode::Pipelined { workers: 2 }] {
        let config = ServiceConfig::new(
            simulation_config(servers, engine),
            TelemetryConfig {
                seed: TELEMETRY_SEED,
                ..TelemetryConfig::default()
            },
        );
        let service = PlacementService::new(config).unwrap();
        let (sender, source) = channel_source(4);
        let (report, responses) = std::thread::scope(|scope| {
            let jobs = &jobs;
            scope.spawn(move || {
                for spec in jobs.iter().cloned() {
                    if sender.submit(PlacementRequest::new(spec)).is_err() {
                        break;
                    }
                }
            });
            service
                .serve_collect(source, make_scheduler().as_mut())
                .unwrap()
        });
        assert_eq!(report.report.outcomes, offline.outcomes);
        assert_eq!(report.report.makespan, offline.makespan);
        assert_eq!(responses.len(), jobs.len());
        // The MILP scheduler reports its per-round solver work in the
        // response enrichment.
        assert!(responses.iter().any(|r| r
            .solver
            .map(|s| s.solves + s.cache_misses > 0)
            .unwrap_or(false)));
    }
}
