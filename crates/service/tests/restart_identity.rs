//! The durable-warm-state contract: **a host restarted from its recovered
//! on-disk journal and cache snapshot behaves byte-identically to one that
//! was never interrupted.**
//!
//! The headline test runs a multi-tenant host, "crashes" it after N
//! admissions (capturing exactly what had reached disk, torn tail
//! included), restarts from the recovered files, streams a second wave of
//! requests, and asserts the combined schedule digest, the combined
//! journal (in memory *and* on disk), and the per-tenant response sets
//! all match an uninterrupted run over the same submissions.
//!
//! The negative battery pins the failure typing: unsupported resume
//! configurations, corrupted journals, and corrupted cache snapshots each
//! surface as their own [`ServiceError`] variant naming the offender —
//! never a panic, never garbage state.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};
use waterwise_cluster::{ClockMode, Scheduler, SimulationConfig};
use waterwise_core::{
    build_scheduler, solver_config_hash, CachePersistError, SchedulerKind, SolutionCache,
    SolutionCacheHandle, WaterWiseConfig,
};
use waterwise_service::{
    AdmissionConfig, AdmissionMode, ClusterHost, HostPersistence, Journal, PlacementResponse,
    PlacementService, ServiceConfig, ServiceError, TenantId,
};
use waterwise_sustain::{FootprintEstimator, KilowattHours, Seconds};
use waterwise_telemetry::{Region, TelemetryConfig};
use waterwise_traces::{Benchmark, JobId, JobSpec};

const TELEMETRY_SEED: u64 = 23;

fn scratch(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ww-restart-{label}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn service_config() -> ServiceConfig {
    ServiceConfig::new(
        SimulationConfig::paper_default(3, 0.5),
        TelemetryConfig {
            seed: TELEMETRY_SEED,
            ..TelemetryConfig::default()
        },
    )
}

fn job(id: u64, submit: f64) -> JobSpec {
    JobSpec {
        id: JobId(id),
        benchmark: Benchmark::Dedup,
        submit_time: Seconds::new(submit),
        home_region: Region::Oregon,
        actual_execution_time: Seconds::new(120.0),
        actual_energy: KilowattHours::new(0.02),
        estimated_execution_time: Seconds::new(120.0),
        estimated_energy: KilowattHours::new(0.02),
        package_bytes: 1 << 16,
    }
}

/// The two waves of the run: wave one is admitted before the crash, wave
/// two only after the restart. Tenants interleave within each wave, and
/// wave-two submit times sit after wave one's so the commit order is
/// stable across the session boundary.
fn wave_one() -> Vec<(TenantId, JobSpec)> {
    (0..6u64)
        .map(|k| {
            let tenant = if k % 2 == 0 { "acme" } else { "umbrella" };
            (TenantId::from(tenant), job(k + 1, k as f64 * 30.0))
        })
        .collect()
}

fn wave_two() -> Vec<(TenantId, JobSpec)> {
    (0..6u64)
        .map(|k| {
            let tenant = if k % 2 == 0 { "umbrella" } else { "acme" };
            (
                TenantId::from(tenant),
                job(k + 101, 600.0 + k as f64 * 30.0),
            )
        })
        .collect()
}

fn waterwise_scheduler(
    service: &PlacementService,
    cache: SolutionCacheHandle,
) -> Box<dyn Scheduler> {
    build_scheduler(
        SchedulerKind::WaterWise,
        service.telemetry(),
        FootprintEstimator::new(service.config().simulation.datacenter),
        &WaterWiseConfig::default(),
        Some(cache),
    )
}

fn config_hash() -> u64 {
    let config = WaterWiseConfig::default();
    solver_config_hash(&config.simplex, &config.branch_bound)
}

fn streaming() -> AdmissionConfig {
    AdmissionConfig {
        mode: AdmissionMode::Streaming {
            close_after_sessions: None,
        },
        ..AdmissionConfig::default()
    }
}

/// Wait until the journal file holds at least `lines` newline-terminated
/// entries — the proof that admissions stream to disk as they happen, and
/// the crash point of the interrupted run.
fn wait_for_journal_lines(path: &Path, lines: usize) -> String {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let text = fs::read_to_string(path).unwrap_or_default();
        if text.bytes().filter(|b| *b == b'\n').count() >= lines {
            return text;
        }
        assert!(
            Instant::now() < deadline,
            "journal {} never reached {lines} entries (has: {text:?})",
            path.display(),
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Submit one wave through one session and hand back the session's
/// response outbox. Each submission is serialized against the journal
/// file (submit, wait for its line, submit the next): the admission
/// queue's deficit-round-robin drains whatever is queued *when the feeder
/// looks*, so un-serialized concurrent submissions would make the drain
/// order — and with it the watermark stamping — timing-dependent. The
/// identity under test is "same admitted stream ⇒ same schedule", so the
/// test pins the stream. `base_lines` is how many entries the journal
/// already held. The default queue depth (256) holds a whole wave, so the
/// responses can be collected after shutdown without backpressure.
fn submit_wave(
    host: &ClusterHost,
    wave: &[(TenantId, JobSpec)],
    journal_path: &Path,
    base_lines: usize,
) -> std::sync::mpsc::Receiver<PlacementResponse> {
    let session = host.open_session("driver").expect("open session");
    let responses = session.take_responses().expect("take responses");
    for (index, (tenant, spec)) in wave.iter().enumerate() {
        session.submit_as(tenant, spec.clone()).expect("submit");
        wait_for_journal_lines(journal_path, base_lines + index + 1);
    }
    session.finish();
    responses
}

/// Responses do not carry a tenant (the admission layer owns routing), so
/// per-tenant sets are re-derived from the waves' job→tenant assignment.
fn group_by_tenant(
    responses: Vec<PlacementResponse>,
) -> BTreeMap<TenantId, Vec<PlacementResponse>> {
    let owners: BTreeMap<JobId, TenantId> = wave_one()
        .into_iter()
        .chain(wave_two())
        .map(|(tenant, spec)| (spec.id, tenant))
        .collect();
    let mut grouped: BTreeMap<TenantId, Vec<PlacementResponse>> = BTreeMap::new();
    for response in responses {
        let tenant = owners.get(&response.job).expect("response for a known job");
        grouped.entry(tenant.clone()).or_default().push(response);
    }
    grouped
}

/// A one-entry journal built through the public text codec.
fn one_entry_journal() -> Journal {
    Journal::parse(
        "{\"seq\":0,\"tenant\":\"acme\",\"id\":1,\"benchmark\":\"dedup\",\
         \"home_region\":\"oregon\",\"execution_time\":60,\"energy\":0.01}",
    )
    .expect("test journal")
}

/// The headline battery: crash after wave one, restart from disk, run
/// wave two, compare everything against the uninterrupted double-wave run.
#[test]
fn restarted_host_is_byte_identical_to_uninterrupted_run() {
    let dir = scratch("identity");
    let journal_path = dir.join("host.journal");
    let cache_path = dir.join("cache.snapshot");

    // ---- Interrupted run, part 1: stream wave one, then "crash". ----
    let (pre_responses, frozen_journal) = {
        let service = PlacementService::new(service_config()).expect("service");
        let cache = SolutionCache::shared();
        let scheduler = waterwise_scheduler(&service, cache.clone());
        let host = ClusterHost::start_persistent(
            service,
            streaming(),
            scheduler,
            HostPersistence::default().with_journal_path(&journal_path),
        )
        .expect("start host 1");
        let responses = submit_wave(&host, &wave_one(), &journal_path, 0);
        // The crash point: all six admissions are on disk. Freeze the file
        // content *now* — nothing the host does after this instant reaches
        // the "recovered" state.
        let frozen = wait_for_journal_lines(&journal_path, wave_one().len());
        // The doomed host must still drain (threads cannot be killed), so
        // clean-join it and discard its report; only `frozen`, the cache
        // snapshot, and the already-delivered responses survive the crash.
        host.shutdown().expect("host 1 shutdown");
        cache
            .save(&cache_path, config_hash())
            .expect("cache snapshot");
        let delivered: Vec<PlacementResponse> = responses.iter().collect();
        (delivered, frozen)
    };
    assert_eq!(pre_responses.len(), wave_one().len());

    // The crash tore a half-written line onto the journal tail; recovery
    // must shed it and keep every complete entry.
    fs::write(
        &journal_path,
        format!("{frozen_journal}{{\"seq\":4294967296,\"tena"),
    )
    .expect("write torn journal");

    // ---- Interrupted run, part 2: restart from the recovered files. ----
    let recovered = Journal::load(&journal_path).expect("recover journal");
    assert_eq!(
        recovered.entries.len(),
        wave_one().len(),
        "torn tail must be shed, complete entries kept"
    );
    let warmed = SolutionCache::load(&cache_path, config_hash())
        .expect("recover cache snapshot")
        .into_handle();
    assert!(
        !warmed.is_empty(),
        "the snapshot must carry wave one's solves"
    );

    let service = PlacementService::new(service_config()).expect("service");
    let scheduler = waterwise_scheduler(&service, warmed.clone());
    let host = ClusterHost::start_persistent(
        service,
        streaming(),
        scheduler,
        HostPersistence::default()
            .with_journal_path(&journal_path)
            .with_resume(recovered),
    )
    .expect("start resumed host");
    let responses = submit_wave(&host, &wave_two(), &journal_path, wave_one().len());
    let resumed_report = host.shutdown().expect("resumed shutdown");
    let post_responses: Vec<PlacementResponse> = responses.iter().collect();
    assert_eq!(post_responses.len(), wave_two().len());
    assert!(
        warmed.stats().exact_hits > 0,
        "replaying the recovered head through a warmed cache must hit exactly"
    );

    // ---- Uninterrupted baseline: both waves through one host life. ----
    let baseline_journal_path = dir.join("baseline.journal");
    let service = PlacementService::new(service_config()).expect("service");
    let scheduler = waterwise_scheduler(&service, SolutionCache::shared());
    let host = ClusterHost::start_persistent(
        service,
        streaming(),
        scheduler,
        HostPersistence::default().with_journal_path(&baseline_journal_path),
    )
    .expect("start baseline host");
    let first = submit_wave(&host, &wave_one(), &baseline_journal_path, 0);
    let second = submit_wave(&host, &wave_two(), &baseline_journal_path, wave_one().len());
    let baseline_report = host.shutdown().expect("baseline shutdown");
    let baseline_responses: Vec<PlacementResponse> = first.iter().chain(second.iter()).collect();

    // ---- The identity. ----
    assert_eq!(
        baseline_report.trace, resumed_report.trace,
        "combined stamped trace diverged"
    );
    assert_eq!(
        baseline_report.journal, resumed_report.journal,
        "combined journal diverged"
    );
    assert_eq!(
        baseline_report.schedule_digest(),
        resumed_report.schedule_digest(),
        "resumed schedule diverged from the uninterrupted run"
    );
    // The on-disk journals are byte-identical too: the resumed host
    // rewrote the recovered prefix and streamed the new entries behind it.
    assert_eq!(
        fs::read(&journal_path).expect("read resumed journal"),
        fs::read(&baseline_journal_path).expect("read baseline journal"),
        "on-disk journals diverged"
    );
    // Per-tenant response sets: crash-surviving responses plus
    // post-restart responses must equal the uninterrupted run's, tenant by
    // tenant, in commit order.
    let interrupted = group_by_tenant(
        pre_responses
            .into_iter()
            .chain(post_responses)
            .collect::<Vec<_>>(),
    );
    let baseline = group_by_tenant(baseline_responses);
    assert_eq!(
        baseline, interrupted,
        "per-tenant response sets diverged across the restart"
    );

    // And the combined journal still replays offline to the same bytes —
    // resume composes with the existing replay harness.
    let replay_service = PlacementService::new(service_config()).expect("service");
    let mut replay_scheduler = waterwise_scheduler(&replay_service, SolutionCache::shared());
    let replay = resumed_report
        .journal
        .replay(&replay_service, replay_scheduler.as_mut())
        .expect("replay");
    assert_eq!(replay.schedule_digest(), resumed_report.schedule_digest());

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn resume_requires_streaming_admission() {
    let service = PlacementService::new(service_config()).expect("service");
    let scheduler = waterwise_scheduler(&service, SolutionCache::shared());
    let result = ClusterHost::start_persistent(
        service,
        AdmissionConfig {
            mode: AdmissionMode::Gated { sessions: 1 },
            ..AdmissionConfig::default()
        },
        scheduler,
        HostPersistence::default().with_resume(one_entry_journal()),
    );
    match result {
        Err(ServiceError::ResumeUnsupported { reason }) => {
            assert!(reason.contains("streaming"), "{reason}")
        }
        Ok(_) => panic!("gated resume must be rejected"),
        Err(other) => panic!("expected ResumeUnsupported, got {other}"),
    }
}

#[test]
fn resume_requires_the_discrete_clock() {
    let service =
        PlacementService::new(service_config().with_clock(ClockMode::RealTime { scale: 1000.0 }))
            .expect("service");
    let scheduler = waterwise_scheduler(&service, SolutionCache::shared());
    let result = ClusterHost::start_persistent(
        service,
        streaming(),
        scheduler,
        HostPersistence::default().with_resume(one_entry_journal()),
    );
    match result {
        Err(ServiceError::ResumeUnsupported { reason }) => {
            assert!(reason.contains("discrete"), "{reason}")
        }
        Ok(_) => panic!("real-time resume must be rejected"),
        Err(other) => panic!("expected ResumeUnsupported, got {other}"),
    }
}

#[test]
fn missing_journal_file_is_a_typed_io_error() {
    let dir = scratch("missing-journal");
    let path = dir.join("never-written.journal");
    match Journal::load(&path) {
        Err(ServiceError::JournalIo { path: reported, .. }) => assert_eq!(reported, path),
        other => panic!("expected JournalIo, got {other:?}"),
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_complete_journal_line_is_typed_and_names_the_line() {
    let dir = scratch("corrupt-journal");
    let path = dir.join("host.journal");
    let good = one_entry_journal().encode();
    // A *complete* (newline-terminated) malformed line is corruption, not
    // a torn tail: it must fail typed, naming the line.
    fs::write(&path, format!("{good}this is not json\n")).expect("write");
    match Journal::load(&path) {
        Err(ServiceError::JournalMalformed { line: 2, .. }) => {}
        other => panic!("expected JournalMalformed on line 2, got {other:?}"),
    }
    // A torn (unterminated) tail is recovered by shedding it.
    fs::write(&path, format!("{good}{{\"seq\":12,\"tena")).expect("write torn");
    let recovered = Journal::load(&path).expect("torn tail must recover");
    assert_eq!(recovered.entries.len(), 1);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn cache_corruption_surfaces_through_service_error_with_source() {
    use std::error::Error as _;
    let dir = scratch("cache-error");
    let path = dir.join("cache.snapshot");
    fs::write(&path, b"not a snapshot").expect("write");
    let error = SolutionCache::load(&path, config_hash()).expect_err("must reject");
    assert!(matches!(error, CachePersistError::BadHeader { .. }));
    let service_error = ServiceError::from(error);
    match &service_error {
        ServiceError::CachePersist(inner) => {
            assert!(inner.to_string().contains("cache.snapshot"))
        }
        other => panic!("expected CachePersist, got {other:?}"),
    }
    assert!(service_error.source().is_some());
    let _ = fs::remove_dir_all(&dir);
}
