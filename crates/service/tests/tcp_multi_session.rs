//! TCP integration battery for the multi-session host: concurrent
//! clients on one persistent engine, in-band typed admission errors,
//! malformed/duplicate lines mid-concurrency, per-session half-close
//! drain while other sessions continue, and abrupt disconnects that must
//! not poison the host.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use waterwise_cluster::{
    EngineMode, Scheduler, SchedulingContext, SchedulingDecision, SimulationConfig,
};
use waterwise_service::{
    wire, AdmissionConfig, AdmissionMode, ClusterHost, PlacementService, ServiceConfig,
    TcpClusterServer, TenantId,
};
use waterwise_sustain::{KilowattHours, Seconds};
use waterwise_telemetry::{Region, TelemetryConfig};
use waterwise_traces::{Benchmark, JobId, JobSpec};

const TELEMETRY_SEED: u64 = 11;

fn job(id: u64, submit: f64, exec: f64) -> JobSpec {
    JobSpec {
        id: JobId(id),
        benchmark: Benchmark::Dedup,
        submit_time: Seconds::new(submit),
        home_region: Region::Oregon,
        actual_execution_time: Seconds::new(exec),
        actual_energy: KilowattHours::new(0.01),
        estimated_execution_time: Seconds::new(exec),
        estimated_energy: KilowattHours::new(0.01),
        package_bytes: 1 << 16,
    }
}

/// Deterministic home-region scheduler — keeps the battery about the
/// serving layer, not the policy.
struct HomeScheduler;

impl Scheduler for HomeScheduler {
    fn name(&self) -> &str {
        "home"
    }
    fn schedule(&mut self, ctx: &SchedulingContext<'_>) -> SchedulingDecision {
        SchedulingDecision::from_pairs(ctx.pending.iter().map(|p| (p.spec.id, p.spec.home_region)))
    }
}

fn start_host(mode: AdmissionMode, quota: usize, engine: EngineMode) -> ClusterHost {
    let config = ServiceConfig::new(
        SimulationConfig::paper_default(4, 0.5).with_engine_mode(engine),
        TelemetryConfig {
            seed: TELEMETRY_SEED,
            ..TelemetryConfig::default()
        },
    );
    let service = PlacementService::new(config).unwrap();
    ClusterHost::start_with_service(
        service,
        AdmissionConfig {
            tenant_inflight_quota: quota,
            drr_quantum: 2,
            mode,
        },
        Box::new(HomeScheduler),
    )
    .unwrap()
}

/// One test client: write every line, half-close, read every reply line.
fn run_client(addr: SocketAddr, lines: &[String]) -> Vec<String> {
    let mut stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    for line in lines {
        stream.write_all(line.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
    }
    stream.flush().unwrap();
    stream.shutdown(Shutdown::Write).unwrap();
    let mut replies = Vec::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line).unwrap_or(0) == 0 {
            return replies;
        }
        let trimmed = line.trim();
        if !trimmed.is_empty() {
            replies.push(trimmed.to_string());
        }
    }
}

fn placements(replies: &[String]) -> Vec<u64> {
    replies
        .iter()
        .filter_map(|l| wire::placement_job_id(l))
        .collect()
}

fn error_codes(replies: &[String]) -> Vec<String> {
    replies.iter().filter_map(|l| wire::error_code(l)).collect()
}

/// Four concurrent tenant clients on one engine run: every request
/// placed, every session drained, and the admission journal replays to
/// the byte-identical schedule.
#[test]
fn four_concurrent_clients_share_one_engine_run() {
    for engine in [EngineMode::Sync, EngineMode::Pipelined { workers: 2 }] {
        let host = start_host(
            AdmissionMode::Streaming {
                close_after_sessions: Some(4),
            },
            64,
            engine,
        );
        let server = TcpClusterServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let per_client: Vec<Vec<String>> = (0..4u64)
            .map(|c| {
                (0..5u64)
                    .map(|k| {
                        wire::encode_tenant_request(
                            &format!("tenant-{c}"),
                            &job(c * 100 + k, 30.0 * k as f64, 90.0),
                        )
                    })
                    .collect()
            })
            .collect();
        let replies: Vec<Vec<String>> = std::thread::scope(|scope| {
            let serving = scope.spawn(|| server.serve_sessions(&host, 4));
            let clients: Vec<_> = per_client
                .iter()
                .map(|lines| scope.spawn(move || run_client(addr, lines)))
                .collect();
            let replies = clients.into_iter().map(|c| c.join().unwrap()).collect();
            serving.join().unwrap().unwrap();
            replies
        });
        for (c, replies) in replies.iter().enumerate() {
            let mut placed = placements(replies);
            placed.sort_unstable();
            let expected: Vec<u64> = (0..5u64).map(|k| c as u64 * 100 + k).collect();
            assert_eq!(placed, expected, "client {c} placements ({engine:?})");
            assert!(error_codes(replies).is_empty());
        }
        let report = host.shutdown().unwrap();
        assert_eq!(report.sessions, 4);
        assert_eq!(
            (report.accepted, report.served, report.rejected),
            (20, 20, 0)
        );
        assert_eq!(report.tenants.len(), 4);

        // The live TCP run's journal replays offline byte-identically.
        let replay_service = PlacementService::new(ServiceConfig::new(
            SimulationConfig::paper_default(4, 0.5),
            TelemetryConfig {
                seed: TELEMETRY_SEED,
                ..TelemetryConfig::default()
            },
        ))
        .unwrap();
        let replay = report
            .journal
            .replay(&replay_service, &mut HomeScheduler)
            .unwrap();
        assert_eq!(report.schedule_digest(), replay.schedule_digest());
        let replayed: usize = replay.responses.values().map(Vec::len).sum();
        assert_eq!(replayed, 20);
    }
}

/// A tenant at its quota gets typed in-band `admission_rejected` lines,
/// deterministically (gated host: nothing drains before end-of-stream,
/// so the queue depth is exactly the submission count).
#[test]
fn quota_exhaustion_is_reported_in_band_as_typed_errors() {
    let host = start_host(AdmissionMode::Gated { sessions: 1 }, 2, EngineMode::Sync);
    let server = TcpClusterServer::bind("127.0.0.1:0").unwrap();
    let addr = server.local_addr().unwrap();
    let lines: Vec<String> = (1..=5u64)
        .map(|id| wire::encode_tenant_request("acme", &job(id, 0.0, 60.0)))
        .collect();
    let replies = std::thread::scope(|scope| {
        let serving = scope.spawn(|| server.serve_sessions(&host, 1));
        let replies = run_client(addr, &lines);
        serving.join().unwrap().unwrap();
        replies
    });
    // Ids 1 and 2 fill the quota; 3, 4, 5 are shed with the typed code.
    assert_eq!(
        error_codes(&replies),
        vec!["admission_rejected"; 3],
        "replies: {replies:?}"
    );
    let mut placed = placements(&replies);
    placed.sort_unstable();
    assert_eq!(placed, vec![1, 2]);
    // The error lines name the rejected jobs and the quota.
    for line in replies.iter().filter(|l| wire::error_code(l).is_some()) {
        assert!(line.contains("quota (2/2)"), "{line}");
    }

    let report = host.shutdown().unwrap();
    assert_eq!((report.accepted, report.rejected, report.served), (2, 3, 2));
    let stats = &report.tenants[&TenantId::from("acme")];
    assert_eq!((stats.accepted, stats.rejected, stats.served), (2, 3, 2));
}

/// Malformed lines and duplicate ids answered in-band mid-concurrency:
/// the offending request dies, the session and its neighbors keep going.
#[test]
fn malformed_and_duplicate_lines_do_not_kill_sessions() {
    let host = start_host(
        AdmissionMode::Streaming {
            close_after_sessions: Some(2),
        },
        64,
        EngineMode::Sync,
    );
    let server = TcpClusterServer::bind("127.0.0.1:0").unwrap();
    let addr = server.local_addr().unwrap();
    let dirty = vec![
        wire::encode_tenant_request("acme", &job(1, 0.0, 60.0)),
        "{\"this is\": not json".to_string(),
        wire::encode_tenant_request("acme", &job(1, 30.0, 60.0)), // duplicate id
        "{\"id\":9,\"benchmark\":\"dedup\",\"home_region\":\"oregon\",\"execution_time\":1e999,\"energy\":0.1}"
            .to_string(), // non-finite time
        wire::encode_tenant_request("acme", &job(2, 30.0, 60.0)),
    ];
    let clean: Vec<String> = (10..14u64)
        .map(|id| wire::encode_tenant_request("umbrella", &job(id, 30.0 * id as f64, 120.0)))
        .collect();
    let (dirty_replies, clean_replies) = std::thread::scope(|scope| {
        let serving = scope.spawn(|| server.serve_sessions(&host, 2));
        let dirty_client = scope.spawn(|| run_client(addr, &dirty));
        let clean_client = scope.spawn(|| run_client(addr, &clean));
        let replies = (dirty_client.join().unwrap(), clean_client.join().unwrap());
        serving.join().unwrap().unwrap();
        replies
    });

    let mut codes = error_codes(&dirty_replies);
    codes.sort_unstable();
    assert_eq!(
        codes,
        vec!["duplicate", "malformed", "malformed"],
        "dirty replies: {dirty_replies:?}"
    );
    let mut placed = placements(&dirty_replies);
    placed.sort_unstable();
    assert_eq!(placed, vec![1, 2]);

    assert!(error_codes(&clean_replies).is_empty());
    assert_eq!(placements(&clean_replies).len(), 4);

    let report = host.shutdown().unwrap();
    assert_eq!((report.accepted, report.rejected, report.served), (6, 1, 6));
}

/// A session that half-closes early drains to EOF while its neighbor is
/// still streaming: the early client's connection completes first, the
/// late one keeps the host running.
#[test]
fn half_closed_session_drains_while_others_continue() {
    let host = start_host(
        AdmissionMode::Streaming {
            close_after_sessions: Some(2),
        },
        64,
        EngineMode::Sync,
    );
    let server = TcpClusterServer::bind("127.0.0.1:0").unwrap();
    let addr = server.local_addr().unwrap();
    let early_lines: Vec<String> = (1..=2u64)
        .map(|id| wire::encode_tenant_request("early", &job(id, 0.0, 60.0)))
        .collect();
    let early_done = std::sync::atomic::AtomicBool::new(false);
    let pushed = std::thread::scope(|scope| {
        let serving = scope.spawn(|| server.serve_sessions(&host, 2));

        // The late session connects first and holds its stream open.
        let mut late = TcpStream::connect(addr).unwrap();
        let mut late_reader = BufReader::new(late.try_clone().unwrap());
        for id in 100..103u64 {
            let line = wire::encode_tenant_request("late", &job(id, 0.0, 60.0));
            late.write_all(line.as_bytes()).unwrap();
            late.write_all(b"\n").unwrap();
        }
        late.flush().unwrap();

        // The early session submits two short jobs and half-closes.
        let early_replies = scope.spawn(|| {
            let replies = run_client(addr, &early_lines);
            early_done.store(true, std::sync::atomic::Ordering::Release);
            replies
        });

        // Advancing simulated time well past the early jobs' completions
        // lets the engine commit and deliver them while `late` is still
        // open — which is exactly what un-blocks the early client's
        // read-to-EOF. The early jobs may be stamped *after* a push that
        // raced ahead of their admission, so keep pushing later times
        // until the early session has fully drained.
        let mut pushes = Vec::new();
        for round in 0..200u64 {
            if early_done.load(std::sync::atomic::Ordering::Acquire) {
                break;
            }
            let id = 103 + round;
            let line =
                wire::encode_tenant_request("late", &job(id, 7200.0 * (round + 1) as f64, 60.0));
            late.write_all(line.as_bytes()).unwrap();
            late.write_all(b"\n").unwrap();
            late.flush().unwrap();
            pushes.push(id);
            std::thread::sleep(std::time::Duration::from_millis(50));
        }
        // Deferred assert: failing here would hang the scope on the
        // still-blocked early reader, so remember the verdict and close
        // the late session either way first.
        let drained_while_late_open = early_done.load(std::sync::atomic::Ordering::Acquire);

        // Now the late session ends too; its replies all arrive.
        late.shutdown(Shutdown::Write).unwrap();
        let mut late_replies = Vec::new();
        loop {
            let mut line = String::new();
            if late_reader.read_line(&mut line).unwrap_or(0) == 0 {
                break;
            }
            if !line.trim().is_empty() {
                late_replies.push(line.trim().to_string());
            }
        }
        let early_replies = early_replies.join().unwrap();
        serving.join().unwrap().unwrap();

        assert!(
            drained_while_late_open,
            "early session did not drain while the late session stayed open"
        );
        let mut placed = placements(&early_replies);
        placed.sort_unstable();
        assert_eq!(placed, vec![1, 2]);
        let mut placed = placements(&late_replies);
        placed.sort_unstable();
        let mut expected: Vec<u64> = vec![100, 101, 102];
        expected.extend(&pushes);
        assert_eq!(placed, expected);
        assert!(!pushes.is_empty(), "the clock never needed advancing?");
        pushes.len()
    });
    let report = host.shutdown().unwrap();
    assert_eq!(report.accepted, 5 + pushed);
    assert_eq!(report.served, report.accepted);
}

/// An abrupt client disconnect (socket dropped, responses never read)
/// discards that session's undelivered responses without poisoning the
/// host: the surviving session completes and the host reports cleanly.
#[test]
fn abrupt_disconnect_does_not_poison_the_host() {
    let host = start_host(
        AdmissionMode::Streaming {
            close_after_sessions: Some(2),
        },
        64,
        EngineMode::Pipelined { workers: 2 },
    );
    let server = TcpClusterServer::bind("127.0.0.1:0").unwrap();
    let addr = server.local_addr().unwrap();
    let survivor_lines: Vec<String> = (10..16u64)
        .map(|id| wire::encode_tenant_request("survivor", &job(id, 30.0 * id as f64, 90.0)))
        .collect();
    let survivor_replies = std::thread::scope(|scope| {
        let serving = scope.spawn(|| server.serve_sessions(&host, 2));

        // The doomed client submits and vanishes without half-closing or
        // reading a single response.
        {
            let mut doomed = TcpStream::connect(addr).unwrap();
            for id in 1..=3u64 {
                let line = wire::encode_tenant_request("doomed", &job(id, 0.0, 60.0));
                doomed.write_all(line.as_bytes()).unwrap();
                doomed.write_all(b"\n").unwrap();
            }
            doomed.flush().unwrap();
            // Dropped here: the OS closes the socket with requests
            // admitted and no reader on the other side.
        }

        let replies = run_client(addr, &survivor_lines);
        serving.join().unwrap().unwrap();
        replies
    });
    assert_eq!(placements(&survivor_replies).len(), 6);
    assert!(error_codes(&survivor_replies).is_empty());

    let report = host.shutdown().unwrap();
    // Every admitted job ran to completion (the engine cannot un-admit),
    // even though the doomed session's deliveries were discarded.
    assert_eq!(report.accepted, 9);
    assert_eq!(report.report.outcomes.len(), 9);
    let survivor = &report.tenants[&TenantId::from("survivor")];
    assert_eq!((survivor.accepted, survivor.served), (6, 6));
    let doomed_stats = &report.tenants[&TenantId::from("doomed")];
    assert_eq!(doomed_stats.accepted, 3);

    // The journal still replays the full 9-job schedule byte-identically.
    let replay_service = PlacementService::new(ServiceConfig::new(
        SimulationConfig::paper_default(4, 0.5),
        TelemetryConfig {
            seed: TELEMETRY_SEED,
            ..TelemetryConfig::default()
        },
    ))
    .unwrap();
    let replay = report
        .journal
        .replay(&replay_service, &mut HomeScheduler)
        .unwrap();
    assert_eq!(report.schedule_digest(), replay.schedule_digest());
    let tenants: BTreeMap<&TenantId, usize> =
        replay.responses.iter().map(|(t, r)| (t, r.len())).collect();
    assert_eq!(tenants[&TenantId::from("doomed")], 3);
    assert_eq!(tenants[&TenantId::from("survivor")], 6);
}
