//! The placement service: glue between a [`RequestSource`] and the online
//! engine driver.

use crate::error::ServiceError;
use crate::request::PlacementResponse;
use crate::source::RequestSource;
use crate::sync::{join_or_resume, lock_clean};
use std::collections::{HashMap, HashSet};
use std::sync::mpsc::SyncSender;
use std::sync::{Arc, Mutex};
use waterwise_cluster::{
    ClockMode, PlacementNotice, Scheduler, SimulationConfig, SimulationReport, Simulator,
};
use waterwise_sustain::{FootprintEstimator, JobResourceUsage, KilowattHours, Seconds};
use waterwise_telemetry::{ConditionsProvider, SyntheticTelemetry, TelemetryConfig};
use waterwise_traces::{JobId, JobSpec};

/// Configuration of one placement service instance.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// The simulated cluster the service places jobs onto (regions, server
    /// counts, scheduling interval, delay tolerance, engine mode).
    pub simulation: SimulationConfig,
    /// The seeded telemetry both the scheduler and the footprint
    /// projections read.
    pub telemetry: TelemetryConfig,
    /// The time authority: [`ClockMode::Discrete`] for deterministic
    /// replay, [`ClockMode::RealTime`] for live pacing.
    pub clock: ClockMode,
    /// Bounded depth of the ingestion channel into the engine. A full
    /// channel blocks the ingestion thread, which backpressures the
    /// request source.
    pub ingest_queue: usize,
    /// Bounded depth of the engine→response enrichment channel. A full
    /// channel blocks the engine's commit step, which backpressures the
    /// whole pipeline.
    pub notice_queue: usize,
}

impl ServiceConfig {
    /// A service over the given cluster with the default knobs: discrete
    /// clock, 256-deep bounded queues.
    pub fn new(simulation: SimulationConfig, telemetry: TelemetryConfig) -> Self {
        Self {
            simulation,
            telemetry,
            clock: ClockMode::Discrete,
            ingest_queue: 256,
            notice_queue: 256,
        }
    }

    /// A small demo cluster (five regions, 40 servers each) for examples,
    /// doctests, and smoke tests.
    pub fn small_demo(seed: u64) -> Self {
        Self::new(
            SimulationConfig::paper_default(40, 0.5),
            TelemetryConfig {
                seed,
                ..TelemetryConfig::default()
            },
        )
    }

    /// Override the clock mode.
    pub fn with_clock(mut self, clock: ClockMode) -> Self {
        self.clock = clock;
        self
    }

    /// Override the engine execution mode (synchronous or pipelined).
    pub fn with_engine_mode(mut self, engine: waterwise_cluster::EngineMode) -> Self {
        self.simulation.engine = engine;
        self
    }
}

/// What a completed serving session reports.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// The campaign-level simulation report, identical in structure to an
    /// offline run's.
    pub report: SimulationReport,
    /// Every admitted job in receipt order with its stamped submit time —
    /// replaying this trace offline through [`Simulator::run`] reproduces
    /// `report`'s schedule byte-identically.
    pub trace: Vec<JobSpec>,
    /// Requests admitted into the engine.
    pub accepted: usize,
    /// Requests rejected before the engine (duplicate ids).
    pub rejected: usize,
    /// Placement responses delivered.
    pub served: usize,
}

/// An online placement front-end over the WaterWise simulation engine.
///
/// One service instance owns the simulated cluster and its telemetry; each
/// [`PlacementService::serve`] call runs one serving *session*: requests
/// are pulled from a [`RequestSource`], injected into the engine as
/// arrivals, and answered with enriched [`PlacementResponse`]s (region,
/// slot, projected carbon/water footprint, deadline feasibility) as the
/// scheduler commits placements. The session ends when the source ends and
/// every admitted job has completed.
///
/// ```
/// use waterwise_service::{channel_source, PlacementRequest, PlacementService, ServiceConfig};
/// use waterwise_sustain::{KilowattHours, Seconds};
/// use waterwise_telemetry::Region;
/// use waterwise_traces::{Benchmark, JobId, JobSpec};
/// use waterwise_core::{build_scheduler, SchedulerKind, WaterWiseConfig};
/// use waterwise_sustain::FootprintEstimator;
///
/// let service = PlacementService::new(ServiceConfig::small_demo(42)).unwrap();
/// let mut scheduler = build_scheduler(
///     SchedulerKind::WaterWise,
///     service.telemetry(),
///     FootprintEstimator::new(service.config().simulation.datacenter),
///     &WaterWiseConfig::default(),
///     None,
/// );
///
/// let (sender, source) = channel_source(8);
/// for id in 0..3 {
///     sender.submit(PlacementRequest::new(JobSpec {
///         id: JobId(id),
///         benchmark: Benchmark::Blackscholes,
///         submit_time: Seconds::new(10.0 * id as f64),
///         home_region: Region::Milan,
///         actual_execution_time: Seconds::new(300.0),
///         actual_energy: KilowattHours::new(0.02),
///         estimated_execution_time: Seconds::new(300.0),
///         estimated_energy: KilowattHours::new(0.02),
///         package_bytes: 1 << 20,
///     })).unwrap();
/// }
/// drop(sender); // end of stream: the session drains and returns
///
/// let (report, responses) = service.serve_collect(source, scheduler.as_mut()).unwrap();
/// assert_eq!(report.accepted, 3);
/// assert_eq!(responses.len(), 3);
/// assert!(responses.iter().all(|r| r.projection.total_carbon().value() > 0.0));
/// ```
pub struct PlacementService {
    config: ServiceConfig,
    telemetry: Arc<SyntheticTelemetry>,
    simulator: Simulator<Arc<SyntheticTelemetry>>,
}

impl PlacementService {
    /// Build a service: validates the cluster configuration and generates
    /// the seeded telemetry.
    pub fn new(config: ServiceConfig) -> Result<Self, ServiceError> {
        let telemetry = SyntheticTelemetry::generate(config.telemetry).shared();
        let simulator = Simulator::new(config.simulation.clone(), telemetry.clone())?;
        Ok(Self {
            config,
            telemetry,
            simulator,
        })
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The ground-truth telemetry provider (shareable; hand clones to the
    /// schedulers you build for [`PlacementService::serve`]).
    pub fn telemetry(&self) -> Arc<SyntheticTelemetry> {
        self.telemetry.clone()
    }

    /// The footprint estimator responses are projected with.
    pub fn estimator(&self) -> &FootprintEstimator {
        self.simulator.estimator()
    }

    /// Run one serving session: pull requests from `source` until it ends,
    /// place them with `scheduler`, and deliver every placement over
    /// `responses` as it commits. Blocks until the session drains (every
    /// admitted job completed); returns the campaign report plus the
    /// recorded trace.
    ///
    /// Duplicate-id requests are rejected before the engine (counted in
    /// [`ServiceReport::rejected`] and reported through
    /// [`RequestSource::reject`]); a closed `responses` receiver, a source
    /// error, or an engine failure terminates the session with a typed
    /// [`ServiceError`].
    pub fn serve<S: RequestSource>(
        &self,
        source: S,
        scheduler: &mut dyn Scheduler,
        responses: SyncSender<PlacementResponse>,
    ) -> Result<ServiceReport, ServiceError> {
        let (job_tx, job_rx) = std::sync::mpsc::sync_channel::<JobSpec>(self.config.ingest_queue);
        let (notice_tx, notice_rx) =
            std::sync::mpsc::sync_channel::<PlacementNotice>(self.config.notice_queue);
        // Request specs by id, parked between ingestion and enrichment (the
        // notice identifies the job; the response needs its estimates).
        let in_flight: Mutex<HashMap<JobId, JobSpec>> = Mutex::new(HashMap::new());

        let interrupter = source.interrupter();
        std::thread::scope(|scope| {
            let ingestion = scope.spawn({
                let in_flight = &in_flight;
                let mut source = source;
                move || -> Result<(usize, usize), ServiceError> {
                    let mut seen: HashSet<JobId> = HashSet::new();
                    let (mut accepted, mut rejected) = (0usize, 0usize);
                    while let Some(request) = source.next()? {
                        let id = request.spec.id;
                        if !seen.insert(id) {
                            rejected += 1;
                            source.reject(&request, &ServiceError::DuplicateRequest { id });
                            continue;
                        }
                        lock_clean(in_flight).insert(id, request.spec.clone());
                        if job_tx.send(request.spec).is_err() {
                            // The engine stopped (its error surfaces from
                            // run_online); stop pulling requests.
                            break;
                        }
                        accepted += 1;
                    }
                    Ok((accepted, rejected))
                }
            });

            let enrichment = scope.spawn({
                let in_flight = &in_flight;
                let responses = &responses;
                move || -> Result<usize, ServiceError> {
                    let mut served = 0usize;
                    for notice in notice_rx.iter() {
                        let spec = lock_clean(in_flight).remove(&notice.job);
                        // Every notice stems from an ingested request, so
                        // the spec is always present; tolerate its absence
                        // rather than poisoning the session.
                        let Some(spec) = spec else { continue };
                        let response = self.enrich(notice, &spec);
                        responses
                            .send(response)
                            .map_err(|_| ServiceError::ResponseSinkClosed)?;
                        served += 1;
                    }
                    Ok(served)
                }
            });

            // The engine runs on the calling thread. `notice_tx` moves into
            // it and drops on return, which ends the enrichment thread;
            // `job_tx` lives on the ingestion thread, whose sends fail once
            // the engine returns.
            let engine_result =
                self.simulator
                    .run_online(scheduler, job_rx, notice_tx, self.config.clock);
            if engine_result.is_err() {
                // A failed engine can no longer consume requests; unblock a
                // source still waiting for its next one so the session can
                // report the failure instead of hanging.
                if let Some(interrupt) = &interrupter {
                    interrupt();
                }
            }
            let ingestion_result = join_or_resume(ingestion);
            let enrichment_result = join_or_resume(enrichment);

            // Error priority: the source's own failure, then a closed
            // response sink (the root cause behind the engine's
            // PlacementSinkDisconnected), then the engine.
            let (accepted, rejected) = ingestion_result?;
            let served = enrichment_result?;
            let online = engine_result?;
            Ok(ServiceReport {
                report: online.report,
                trace: online.trace,
                accepted,
                rejected,
                served,
            })
        })
    }

    /// [`PlacementService::serve`] with responses collected into a vector —
    /// the convenient shape for tests, benchmarks, and offline-identity
    /// checks. The internal response channel still applies bounded
    /// backpressure; the collector thread just drains it continuously.
    pub fn serve_collect<S: RequestSource>(
        &self,
        source: S,
        scheduler: &mut dyn Scheduler,
    ) -> Result<(ServiceReport, Vec<PlacementResponse>), ServiceError> {
        let (tx, rx) = std::sync::mpsc::sync_channel(self.config.notice_queue.max(64));
        std::thread::scope(|scope| {
            let collector = scope.spawn(move || rx.iter().collect::<Vec<_>>());
            let report = self.serve(source, scheduler, tx);
            let responses = join_or_resume(collector);
            Ok((report?, responses))
        })
    }

    /// The simulator backing the service — the multi-session host drives
    /// its persistent engine run (and journal replays) through this.
    pub(crate) fn simulator(&self) -> &Simulator<Arc<SyntheticTelemetry>> {
        &self.simulator
    }

    /// Turn an engine placement notice into a client-facing response:
    /// project the decision's carbon/water footprint under the conditions
    /// at the projected start and evaluate deadline feasibility — all on
    /// the scheduler-visible *estimates*, mirroring the information the
    /// placement was made with.
    pub(crate) fn enrich(&self, notice: PlacementNotice, spec: &JobSpec) -> PlacementResponse {
        let conditions = self
            .telemetry
            .conditions(notice.region, notice.projected_start);
        let transfer_energy = if notice.region == spec.home_region {
            KilowattHours::zero()
        } else {
            self.config.simulation.transfer.transfer_energy(
                spec.home_region,
                notice.region,
                spec.package_bytes,
            )
        };
        let usage = JobResourceUsage::new(spec.estimated_energy, spec.estimated_execution_time);
        let projection =
            self.simulator
                .estimator()
                .project_decision(usage, transfer_energy, conditions);
        let projected_completion =
            notice.projected_start.value() + spec.estimated_execution_time.value();
        let deadline = notice.submitted_at.value()
            + (1.0 + self.config.simulation.delay_tolerance)
                * spec.estimated_execution_time.value();
        PlacementResponse {
            job: notice.job,
            region: notice.region,
            slot: notice.slot,
            decided_at: notice.decided_at,
            submitted_at: notice.submitted_at,
            deferrals: notice.deferrals,
            projected_start: notice.projected_start,
            projected_completion: Seconds::new(projected_completion),
            deadline: Seconds::new(deadline),
            deadline_feasible: projected_completion <= deadline + 1e-6,
            projection,
            solver: notice.solver,
        }
    }
}
