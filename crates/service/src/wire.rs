//! The line-delimited-JSON wire format of the TCP front-end.
//!
//! One JSON object per `\n`-terminated line, in both directions. The
//! format is deliberately flat (no nesting, no arrays) so this hand-rolled
//! codec can stay small: the workspace builds fully offline against a
//! no-op `serde` stand-in (see `crates/compat/README.md`), so the service
//! cannot lean on `serde_json`. The full field reference lives in
//! `docs/ONLINE_SERVICE.md`.
//!
//! ```
//! use waterwise_service::wire;
//!
//! let request = wire::parse_request(
//!     r#"{"id":1,"benchmark":"canneal","home_region":"Oregon",
//!         "submit_time":12.5,"execution_time":600,"energy":0.05}"#,
//! )
//! .unwrap();
//! assert_eq!(request.spec.id.0, 1);
//! // Without explicit estimates, the scheduler sees the actuals.
//! assert_eq!(request.spec.estimated_execution_time.value(), 600.0);
//! ```

use crate::request::{PlacementRequest, PlacementResponse};
use std::collections::HashMap;
use std::fmt::Write as _;
use waterwise_sustain::{KilowattHours, Seconds};
use waterwise_telemetry::Region;
use waterwise_traces::{Benchmark, JobId, JobSpec};

/// A parsed flat JSON value.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Value {
    Number(f64),
    String(String),
    Bool(bool),
    Null,
}

impl Value {
    fn describe(&self) -> &'static str {
        match self {
            Value::Number(_) => "a number",
            Value::String(_) => "a string",
            Value::Bool(_) => "a boolean",
            Value::Null => "null",
        }
    }
}

/// Parse one flat JSON object (`{"key": value, ...}` with number / string /
/// boolean / null values) into a key→value map. Nested objects and arrays
/// are rejected — the wire format never uses them. Shared with the
/// admission journal codec (`crate::journal`), which reuses the request
/// grammar plus `seq`/`tenant` fields.
pub(crate) fn parse_flat_object(line: &str) -> Result<HashMap<String, Value>, String> {
    let mut chars = line.char_indices().peekable();
    let mut fields = HashMap::new();

    fn skip_ws(chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>) {
        while matches!(chars.peek(), Some((_, c)) if c.is_ascii_whitespace()) {
            chars.next();
        }
    }

    fn parse_string(
        chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>,
    ) -> Result<String, String> {
        match chars.next() {
            Some((_, '"')) => {}
            other => return Err(format!("expected '\"', found {other:?}")),
        }
        let mut out = String::new();
        loop {
            match chars.next() {
                None => return Err("unterminated string".to_string()),
                Some((_, '"')) => return Ok(out),
                Some((_, '\\')) => match chars.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, '/')) => out.push('/'),
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, 'r')) => out.push('\r'),
                    Some((_, 'b')) => out.push('\u{8}'),
                    Some((_, 'f')) => out.push('\u{c}'),
                    Some((_, 'u')) => {
                        let hex: String = (0..4)
                            .filter_map(|_| chars.next().map(|(_, c)| c))
                            .collect();
                        let code = u32::from_str_radix(&hex, 16)
                            .map_err(|_| format!("bad \\u escape \\u{hex}"))?;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| format!("bad \\u escape \\u{hex}"))?,
                        );
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some((_, c)) => out.push(c),
            }
        }
    }

    skip_ws(&mut chars);
    match chars.next() {
        Some((_, '{')) => {}
        _ => return Err("expected a JSON object starting with '{'".to_string()),
    }
    skip_ws(&mut chars);
    if matches!(chars.peek(), Some((_, '}'))) {
        chars.next();
    } else {
        loop {
            skip_ws(&mut chars);
            let key = parse_string(&mut chars)?;
            skip_ws(&mut chars);
            match chars.next() {
                Some((_, ':')) => {}
                other => return Err(format!("expected ':' after key {key:?}, found {other:?}")),
            }
            skip_ws(&mut chars);
            let value = match chars.peek() {
                Some((_, '"')) => Value::String(parse_string(&mut chars)?),
                Some((_, '{')) | Some((_, '[')) => {
                    return Err(format!("nested values are not allowed (key {key:?})"));
                }
                Some(_) => {
                    // A number, boolean, or null: runs to the next
                    // delimiter.
                    let mut token = String::new();
                    while let Some((_, c)) = chars.peek() {
                        if *c == ',' || *c == '}' || c.is_ascii_whitespace() {
                            break;
                        }
                        token.push(*c);
                        chars.next();
                    }
                    match token.as_str() {
                        "true" => Value::Bool(true),
                        "false" => Value::Bool(false),
                        "null" => Value::Null,
                        _ => Value::Number(
                            token
                                .parse::<f64>()
                                .map_err(|_| format!("bad value {token:?} for key {key:?}"))?,
                        ),
                    }
                }
                None => return Err(format!("missing value for key {key:?}")),
            };
            fields.insert(key, value);
            skip_ws(&mut chars);
            match chars.next() {
                Some((_, ',')) => continue,
                Some((_, '}')) => break,
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }
    skip_ws(&mut chars);
    if let Some((_, c)) = chars.next() {
        return Err(format!("trailing content after object: {c:?}"));
    }
    Ok(fields)
}

pub(crate) fn number(fields: &HashMap<String, Value>, key: &str) -> Result<Option<f64>, String> {
    match fields.get(key) {
        None | Some(Value::Null) => Ok(None),
        // Rust's f64 parser accepts "inf"/"NaN", and a valid-JSON 1e999
        // saturates to +inf. A non-finite value admitted here would kill
        // the whole serving session at the engine's event queue instead of
        // being answered in-band, so finiteness is part of the wire
        // grammar for every numeric field.
        Some(Value::Number(n)) if !n.is_finite() => {
            Err(format!("{key} must be a finite number, got {n}"))
        }
        Some(Value::Number(n)) => Ok(Some(*n)),
        Some(other) => Err(format!("{key} must be a number, got {}", other.describe())),
    }
}

/// A required-to-be-non-negative number (times, energies): negatives would
/// schedule time-reversed events or negative footprints.
fn non_negative(value: f64, key: &str) -> Result<f64, String> {
    if value < 0.0 {
        Err(format!("{key} must be non-negative, got {value}"))
    } else {
        Ok(value)
    }
}

pub(crate) fn string<'a>(
    fields: &'a HashMap<String, Value>,
    key: &str,
) -> Result<Option<&'a str>, String> {
    match fields.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::String(s)) => Ok(Some(s)),
        Some(other) => Err(format!("{key} must be a string, got {}", other.describe())),
    }
}

/// Parse one request line.
///
/// Required fields: `id` (non-negative integer), `benchmark` (a Table-1
/// name, e.g. `"canneal"`), `home_region` (a region name or AWS id), and an
/// execution-time/energy pair. Times and energies accept either the plain
/// keys `execution_time` (s) / `energy` (kWh) — used for both actual and
/// estimated — or the split keys `actual_execution_time` /
/// `estimated_execution_time` / `actual_energy` / `estimated_energy` when
/// the client wants the scheduler to see estimates that differ from ground
/// truth. Optional: `submit_time` (s, default 0; authoritative only under
/// the discrete clock) and `package_bytes` (default 0).
///
/// Every numeric field must be finite, and times/energies non-negative —
/// enforced here so a hostile or buggy value is answered with an in-band
/// error instead of reaching the engine and failing the whole session.
pub fn parse_request(line: &str) -> Result<PlacementRequest, String> {
    let fields = parse_flat_object(line)?;
    request_from_fields(&fields)
}

/// [`parse_request`] plus the multi-tenant host's optional `tenant` field
/// (a non-empty string naming the tenant the request is admitted and
/// quota-accounted under; absent/null means the session's default tenant).
pub fn parse_tenant_request(line: &str) -> Result<(Option<String>, PlacementRequest), String> {
    let fields = parse_flat_object(line)?;
    let tenant = match string(&fields, "tenant")? {
        None => None,
        Some("") => return Err("tenant must be a non-empty string".to_string()),
        Some(name) => Some(name.to_string()),
    };
    Ok((tenant, request_from_fields(&fields)?))
}

/// The request grammar over already-parsed fields — shared by
/// [`parse_request`], [`parse_tenant_request`], and the admission journal
/// codec.
pub(crate) fn request_from_fields(
    fields: &HashMap<String, Value>,
) -> Result<PlacementRequest, String> {
    let id = number(fields, "id")?.ok_or("missing required field: id")?;
    // Ids ride through an f64 (the JSON number type), which is exact only
    // up to 2^53; a larger id would silently round, answering the client
    // with a different id than it sent and colliding distinct ids into
    // false duplicates. Reject instead.
    // `>=` because a wire value of 2^53 + 1 has already rounded *onto*
    // 2^53 by the time it is checked — at the boundary the original
    // digits are unrecoverable.
    const MAX_EXACT_ID: f64 = (1u64 << 53) as f64;
    if id < 0.0 || id.fract() != 0.0 || id >= MAX_EXACT_ID {
        return Err(format!(
            "id must be a non-negative integer below 2^53, got {id}"
        ));
    }
    let benchmark_name = string(fields, "benchmark")?.ok_or("missing required field: benchmark")?;
    let benchmark = Benchmark::from_name(benchmark_name)
        .ok_or_else(|| format!("unknown benchmark {benchmark_name:?}"))?;
    let region_name =
        string(fields, "home_region")?.ok_or("missing required field: home_region")?;
    let home_region = Region::from_name(region_name)
        .ok_or_else(|| format!("unknown home_region {region_name:?}"))?;

    let plain_time = number(fields, "execution_time")?;
    let actual_execution_time = non_negative(
        number(fields, "actual_execution_time")?
            .or(plain_time)
            .ok_or("missing execution time: provide execution_time or actual_execution_time")?,
        "execution time",
    )?;
    let estimated_execution_time = non_negative(
        number(fields, "estimated_execution_time")?
            .or(plain_time)
            .unwrap_or(actual_execution_time),
        "estimated_execution_time",
    )?;
    let plain_energy = number(fields, "energy")?;
    let actual_energy = non_negative(
        number(fields, "actual_energy")?
            .or(plain_energy)
            .ok_or("missing energy: provide energy or actual_energy")?,
        "energy",
    )?;
    let estimated_energy = non_negative(
        number(fields, "estimated_energy")?
            .or(plain_energy)
            .unwrap_or(actual_energy),
        "estimated_energy",
    )?;

    let submit_time = non_negative(number(fields, "submit_time")?.unwrap_or(0.0), "submit_time")?;
    let package_bytes = match number(fields, "package_bytes")? {
        None => 0,
        Some(b) if b >= 0.0 && b.fract() == 0.0 && b <= u64::MAX as f64 => b as u64,
        Some(b) => {
            return Err(format!(
                "package_bytes must be a non-negative integer, got {b}"
            ))
        }
    };

    Ok(PlacementRequest::new(JobSpec {
        id: JobId(id as u64),
        benchmark,
        submit_time: Seconds::new(submit_time),
        home_region,
        actual_execution_time: Seconds::new(actual_execution_time),
        actual_energy: KilowattHours::new(actual_energy),
        estimated_execution_time: Seconds::new(estimated_execution_time),
        estimated_energy: KilowattHours::new(estimated_energy),
        package_bytes,
    }))
}

/// Encode a job spec as a request line (without the trailing newline) —
/// the inverse of [`parse_request`], using the split actual/estimated keys
/// so estimate error survives the round trip. Trace-replay clients (the
/// `fig17_service` benchmark, load generators) build their streams with
/// this so there is exactly one wire codec: the one the service parses.
///
/// ```
/// use waterwise_service::wire;
/// use waterwise_sustain::{KilowattHours, Seconds};
/// use waterwise_telemetry::Region;
/// use waterwise_traces::{Benchmark, JobId, JobSpec};
///
/// let spec = JobSpec {
///     id: JobId(7),
///     benchmark: Benchmark::Swaptions,
///     submit_time: Seconds::new(12.5),
///     home_region: Region::Madrid,
///     actual_execution_time: Seconds::new(120.0),
///     actual_energy: KilowattHours::new(0.02),
///     estimated_execution_time: Seconds::new(100.0),
///     estimated_energy: KilowattHours::new(0.018),
///     package_bytes: 4096,
/// };
/// let line = wire::encode_request(&spec);
/// assert_eq!(wire::parse_request(&line).unwrap().spec, spec);
/// ```
pub fn encode_request(spec: &JobSpec) -> String {
    format!("{{{}}}", request_fields(spec))
}

/// [`encode_request`] with the multi-tenant host's `tenant` field — the
/// stream shape multi-session clients (and the `fig17_service` benchmark's
/// tenant cells) write.
pub fn encode_tenant_request(tenant: &str, spec: &JobSpec) -> String {
    format!(
        "{{\"tenant\":{},{}}}",
        json_string(tenant),
        request_fields(spec)
    )
}

/// The request's field list without the surrounding braces, so wrappers
/// (tenant requests, journal entries) can prepend their own fields while
/// keeping exactly one codec for the spec itself.
pub(crate) fn request_fields(spec: &JobSpec) -> String {
    format!(
        "\"id\":{},\"benchmark\":{},\"home_region\":{},\"submit_time\":{},\
         \"actual_execution_time\":{},\"estimated_execution_time\":{},\
         \"actual_energy\":{},\"estimated_energy\":{},\"package_bytes\":{}",
        spec.id.0,
        json_string(spec.benchmark.name()),
        json_string(spec.home_region.name()),
        json_number(spec.submit_time.value()),
        json_number(spec.actual_execution_time.value()),
        json_number(spec.estimated_execution_time.value()),
        json_number(spec.actual_energy.value()),
        json_number(spec.estimated_energy.value()),
        spec.package_bytes,
    )
}

/// Extract the job id from a placement response line; `None` for error
/// lines, non-placement lines, or garbage. The inverse clients need of
/// [`encode_response`], parsed with the same flat-JSON grammar the rest of
/// the wire uses.
pub fn placement_job_id(line: &str) -> Option<u64> {
    let fields = parse_flat_object(line).ok()?;
    match fields.get("type") {
        Some(Value::String(kind)) if kind == "placement" => {}
        _ => return None,
    }
    match fields.get("job") {
        Some(Value::Number(id)) if *id >= 0.0 && id.fract() == 0.0 => Some(*id as u64),
        _ => None,
    }
}

/// Render a JSON number (non-finite values become `null`, which the engine
/// rejects before they could ever reach a response anyway).
pub(crate) fn json_number(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else {
        "null".to_string()
    }
}

/// Escape a string for embedding in a JSON value position.
pub(crate) fn json_string(value: &str) -> String {
    let mut out = String::with_capacity(value.len() + 2);
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Encode one placement response line (without the trailing newline).
pub fn encode_response(response: &PlacementResponse) -> String {
    let mut line = String::with_capacity(256);
    let _ = write!(
        line,
        "{{\"type\":\"placement\",\"job\":{},\"region\":{},\"slot\":{},\
         \"decided_at\":{},\"submitted_at\":{},\"deferrals\":{},\
         \"projected_start\":{},\"projected_completion\":{},\"deadline\":{},\
         \"deadline_feasible\":{},\"projected_carbon_g\":{},\"projected_water_l\":{}",
        response.job.0,
        json_string(response.region.name()),
        response.slot,
        json_number(response.decided_at.value()),
        json_number(response.submitted_at.value()),
        response.deferrals,
        json_number(response.projected_start.value()),
        json_number(response.projected_completion.value()),
        json_number(response.deadline.value()),
        response.deadline_feasible,
        json_number(response.projection.total_carbon().value()),
        json_number(response.projection.total_water().value()),
    );
    if let Some(solver) = &response.solver {
        let _ = write!(
            line,
            ",\"solver_solves\":{},\"solver_pivots\":{},\"solver_nodes\":{}",
            solver.solves, solver.simplex_pivots, solver.nodes,
        );
    }
    line.push('}');
    line
}

/// Encode one in-band error line (without the trailing newline), reported
/// for requests that never reached the engine. `code` is the typed,
/// machine-matchable failure class (`"malformed"`, `"duplicate"`,
/// `"admission_rejected"`, `"session_closed"`); `message` is the
/// human-readable rendering.
pub fn encode_error(code: &str, job: Option<JobId>, message: &str) -> String {
    match job {
        Some(job) => format!(
            "{{\"type\":\"error\",\"code\":{},\"job\":{},\"message\":{}}}",
            json_string(code),
            job.0,
            json_string(message)
        ),
        None => format!(
            "{{\"type\":\"error\",\"code\":{},\"message\":{}}}",
            json_string(code),
            json_string(message)
        ),
    }
}

/// Extract the `code` of an in-band error line; `None` for non-error lines
/// or garbage. The client-side inverse of [`encode_error`], used by tests
/// and load generators to assert on typed rejections.
pub fn error_code(line: &str) -> Option<String> {
    let fields = parse_flat_object(line).ok()?;
    match fields.get("type") {
        Some(Value::String(kind)) if kind == "error" => {}
        _ => return None,
    }
    match fields.get("code") {
        Some(Value::String(code)) => Some(code.clone()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waterwise_cluster::SolverActivity;
    use waterwise_sustain::DecisionProjection;

    #[test]
    fn parses_a_full_request() {
        let request = parse_request(
            r#"{"id": 7, "benchmark": "web-serving", "home_region": "ap-south-1",
                "submit_time": 30.5, "actual_execution_time": 120,
                "estimated_execution_time": 100, "actual_energy": 0.02,
                "estimated_energy": 0.018, "package_bytes": 4096}"#,
        )
        .unwrap();
        assert_eq!(request.spec.id, JobId(7));
        assert_eq!(request.spec.benchmark, Benchmark::WebServing);
        assert_eq!(request.spec.home_region, Region::Mumbai);
        assert_eq!(request.spec.submit_time.value(), 30.5);
        assert_eq!(request.spec.actual_execution_time.value(), 120.0);
        assert_eq!(request.spec.estimated_execution_time.value(), 100.0);
        assert_eq!(request.spec.package_bytes, 4096);
    }

    #[test]
    fn plain_keys_cover_both_actuals_and_estimates() {
        let request = parse_request(
            r#"{"id":1,"benchmark":"dedup","home_region":"Zurich","execution_time":60,"energy":0.01}"#,
        )
        .unwrap();
        assert_eq!(request.spec.actual_execution_time.value(), 60.0);
        assert_eq!(request.spec.estimated_execution_time.value(), 60.0);
        assert_eq!(request.spec.actual_energy.value(), 0.01);
        assert_eq!(request.spec.estimated_energy.value(), 0.01);
        assert_eq!(request.spec.submit_time.value(), 0.0);
        assert_eq!(request.spec.package_bytes, 0);
    }

    #[test]
    fn malformed_requests_name_the_problem() {
        for (line, needle) in [
            ("not json", "object"),
            (r#"{"benchmark":"dedup"}"#, "id"),
            (r#"{"id":1}"#, "benchmark"),
            (
                r#"{"id":1,"benchmark":"sorting","home_region":"Zurich"}"#,
                "benchmark",
            ),
            (
                r#"{"id":1,"benchmark":"dedup","home_region":"atlantis"}"#,
                "home_region",
            ),
            (
                r#"{"id":1,"benchmark":"dedup","home_region":"Zurich"}"#,
                "execution",
            ),
            (
                r#"{"id":1.5,"benchmark":"dedup","home_region":"Zurich","execution_time":60,"energy":0.01}"#,
                "integer",
            ),
            (r#"{"id":1,"nested":{"a":1}}"#, "nested"),
            (r#"{"id":"one"}"#, "number"),
            (r#"{"id":1} trailing"#, "trailing"),
            // Non-finite and negative numerics must be per-request errors,
            // never reach the engine (where they would kill the session).
            (
                r#"{"id":1,"benchmark":"dedup","home_region":"Zurich","submit_time":1e999,"execution_time":60,"energy":0.01}"#,
                "finite",
            ),
            (
                r#"{"id":1,"benchmark":"dedup","home_region":"Zurich","execution_time":inf,"energy":0.01}"#,
                "finite",
            ),
            (
                r#"{"id":1,"benchmark":"dedup","home_region":"Zurich","execution_time":NaN,"energy":0.01}"#,
                "finite",
            ),
            (
                r#"{"id":1,"benchmark":"dedup","home_region":"Zurich","execution_time":-60,"energy":0.01}"#,
                "non-negative",
            ),
            (
                r#"{"id":1,"benchmark":"dedup","home_region":"Zurich","execution_time":60,"energy":-0.01}"#,
                "non-negative",
            ),
            (
                r#"{"id":1,"benchmark":"dedup","home_region":"Zurich","submit_time":-5,"execution_time":60,"energy":0.01}"#,
                "non-negative",
            ),
            // 2^53 + 1 is not exactly representable in the f64 the JSON
            // number rides through; admitting it would silently answer
            // with a rounded id.
            (
                r#"{"id":9007199254740993,"benchmark":"dedup","home_region":"Zurich","execution_time":60,"energy":0.01}"#,
                "2^53",
            ),
        ] {
            let err = parse_request(line).unwrap_err();
            assert!(
                err.to_lowercase().contains(needle),
                "error {err:?} for {line:?} should mention {needle:?}"
            );
        }
    }

    #[test]
    fn responses_round_trip_through_the_flat_parser() {
        let response = PlacementResponse {
            job: JobId(17),
            region: Region::Zurich,
            slot: 3,
            decided_at: Seconds::new(60.0),
            submitted_at: Seconds::new(12.5),
            deferrals: 1,
            projected_start: Seconds::new(62.25),
            projected_completion: Seconds::new(722.25),
            deadline: Seconds::new(837.5),
            deadline_feasible: true,
            projection: DecisionProjection::default(),
            solver: Some(SolverActivity {
                solves: 2,
                simplex_pivots: 40,
                nodes: 3,
                ..SolverActivity::default()
            }),
        };
        let line = encode_response(&response);
        let fields = parse_flat_object(&line).unwrap();
        assert_eq!(fields["type"], Value::String("placement".into()));
        assert_eq!(fields["job"], Value::Number(17.0));
        assert_eq!(fields["region"], Value::String("Zurich".into()));
        assert_eq!(fields["deadline_feasible"], Value::Bool(true));
        assert_eq!(fields["solver_pivots"], Value::Number(40.0));

        let error = encode_error("duplicate", Some(JobId(4)), "duplicate \"id\"");
        let fields = parse_flat_object(&error).unwrap();
        assert_eq!(fields["type"], Value::String("error".into()));
        assert_eq!(fields["code"], Value::String("duplicate".into()));
        assert_eq!(fields["message"], Value::String("duplicate \"id\"".into()));
        assert_eq!(error_code(&error).as_deref(), Some("duplicate"));
        assert_eq!(error_code(&line), None);
        assert_eq!(error_code("garbage"), None);
    }

    #[test]
    fn tenant_requests_round_trip() {
        let spec = JobSpec {
            id: JobId(11),
            benchmark: Benchmark::Canneal,
            submit_time: Seconds::new(30.0),
            home_region: Region::Oregon,
            actual_execution_time: Seconds::new(120.0),
            actual_energy: KilowattHours::new(0.02),
            estimated_execution_time: Seconds::new(120.0),
            estimated_energy: KilowattHours::new(0.02),
            package_bytes: 64,
        };
        let line = encode_tenant_request("team-a", &spec);
        let (tenant, request) = parse_tenant_request(&line).unwrap();
        assert_eq!(tenant.as_deref(), Some("team-a"));
        assert_eq!(request.spec, spec);

        // Plain requests parse with no tenant; plain `parse_request`
        // ignores (and tolerates) the tenant field.
        let (tenant, _) = parse_tenant_request(&encode_request(&spec)).unwrap();
        assert_eq!(tenant, None);
        assert_eq!(parse_request(&line).unwrap().spec, spec);

        // An empty or non-string tenant is malformed, in-band.
        assert!(parse_tenant_request(r#"{"tenant":"","id":1}"#)
            .unwrap_err()
            .contains("tenant"));
        assert!(parse_tenant_request(r#"{"tenant":7,"id":1}"#)
            .unwrap_err()
            .contains("string"));
    }

    #[test]
    fn string_escapes_round_trip() {
        let fields = parse_flat_object(r#"{"message":"line\nbreak \"quoted\" A"}"#).unwrap();
        assert_eq!(
            fields["message"],
            Value::String("line\nbreak \"quoted\" A".into())
        );
    }
}
