//! `placement_server` — stand-alone TCP placement service.
//!
//! Serves the line-delimited-JSON placement protocol (one client session at
//! a time; each session is one campaign). All knobs come from the
//! environment; see `docs/ONLINE_SERVICE.md` for the operator's guide.
//!
//! | Variable | Default | Meaning |
//! |---|---|---|
//! | `WATERWISE_ADDR` | `127.0.0.1:7878` | Listen address (`:0` for ephemeral). |
//! | `WATERWISE_CLOCK` | `real-time:60` | `discrete` or `real-time:<scale>`. |
//! | `WATERWISE_WORKERS` | `2` | `0` = synchronous engine, else pipelined workers. |
//! | `WATERWISE_SERVERS` | `280` | Servers per region. |
//! | `WATERWISE_TOLERANCE` | `0.5` | Delay tolerance (fraction of execution time). |
//! | `WATERWISE_SEED` | `42` | Telemetry seed. |
//! | `WATERWISE_SESSIONS` | unbounded | Serve this many sessions, then exit. |

use waterwise_cluster::{ClockMode, EngineMode, SimulationConfig};
use waterwise_core::{build_scheduler, SchedulerKind, WaterWiseConfig};
use waterwise_service::{PlacementService, ServiceConfig, TcpPlacementServer};
use waterwise_sustain::FootprintEstimator;
use waterwise_telemetry::TelemetryConfig;

fn env_or<T: std::str::FromStr>(key: &str, default: T) -> T {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn clock_from_env() -> ClockMode {
    let raw = std::env::var("WATERWISE_CLOCK").unwrap_or_else(|_| "real-time:60".to_string());
    if raw == "discrete" {
        ClockMode::Discrete
    } else {
        let scale = raw
            .strip_prefix("real-time:")
            .or_else(|| raw.strip_prefix("realtime:"))
            .and_then(|s| s.parse().ok())
            .unwrap_or(60.0);
        ClockMode::RealTime { scale }
    }
}

fn main() {
    let addr = std::env::var("WATERWISE_ADDR").unwrap_or_else(|_| "127.0.0.1:7878".to_string());
    let workers: usize = env_or("WATERWISE_WORKERS", 2);
    let engine = if workers == 0 {
        EngineMode::Sync
    } else {
        EngineMode::Pipelined { workers }
    };
    let clock = clock_from_env();
    let seed: u64 = env_or("WATERWISE_SEED", 42);
    let simulation = SimulationConfig::paper_default(
        env_or("WATERWISE_SERVERS", 280),
        env_or("WATERWISE_TOLERANCE", 0.5),
    )
    .with_engine_mode(engine);
    let telemetry = TelemetryConfig {
        seed,
        ..TelemetryConfig::default()
    };
    let sessions: usize = env_or("WATERWISE_SESSIONS", usize::MAX);

    let service =
        PlacementService::new(ServiceConfig::new(simulation, telemetry).with_clock(clock))
            .expect("valid service configuration");
    let server = TcpPlacementServer::bind(&addr).expect("bind listen address");
    eprintln!(
        "placement_server listening on {} (clock {}, engine {}, seed {seed})",
        server.local_addr().expect("bound address"),
        clock.label(),
        engine.label(),
    );

    for session in 0..sessions {
        // One fresh WaterWise scheduler per session: sessions are
        // independent campaigns.
        let mut scheduler = build_scheduler(
            SchedulerKind::WaterWise,
            service.telemetry(),
            FootprintEstimator::new(service.config().simulation.datacenter),
            &WaterWiseConfig::default(),
            None,
        );
        match server.serve_connection(&service, scheduler.as_mut()) {
            Ok(report) => eprintln!(
                "session {session}: accepted {}, rejected {}, served {}, \
                 makespan {:.0} s, total {:.1} gCO2 / {:.1} L",
                report.accepted,
                report.rejected,
                report.served,
                report.report.makespan.value(),
                report.report.summary.total_carbon.value(),
                report.report.summary.total_water.value(),
            ),
            Err(error) => eprintln!("session {session} failed: {error}"),
        }
    }
}
