//! `placement_server` — stand-alone TCP placement service.
//!
//! Serves the line-delimited-JSON placement protocol. The base
//! configuration is a declarative scenario spec —
//! `scenarios/server_default.spec` unless `--scenario <path>` /
//! `WATERWISE_SCENARIO` names another file (grammar: `docs/SCENARIOS.md`)
//! — and individual environment variables override knobs on top of it;
//! see `docs/ONLINE_SERVICE.md` for the operator's guide.
//!
//! Two serving shapes:
//!
//! - **default**: one client session at a time, each session an
//!   independent campaign with a fresh scheduler;
//! - **multi-session** (`WATERWISE_MULTI_SESSION=<n>`): one persistent
//!   engine run hosting `n` *concurrent* client sessions with per-tenant
//!   admission control; on completion the host prints the campaign
//!   summary and (with `WATERWISE_JOURNAL=<path>`) writes the admission
//!   journal, replayable via [`waterwise_service::Journal`].
//!
//! | Variable | Overrides | Meaning |
//! |---|---|---|
//! | `WATERWISE_ADDR` | — | Listen address, default `127.0.0.1:7878` (`:0` for ephemeral). |
//! | `WATERWISE_SCENARIO` | the whole spec | Path of the scenario spec file. |
//! | `WATERWISE_CLOCK` | `[simulation] clock` | `discrete` or `real-time:<scale>`. |
//! | `WATERWISE_WORKERS` | `[simulation] engine` | `0` = synchronous engine, else pipelined workers. |
//! | `WATERWISE_SERVERS` | `[simulation] servers_per_region` | Servers per region. |
//! | `WATERWISE_TOLERANCE` | `[simulation] delay_tolerance` | Delay tolerance (fraction of execution time). |
//! | `WATERWISE_SEED` | `[scenario] seed` | Trace + telemetry seed. |
//! | `WATERWISE_SESSIONS` | — | Single-session mode: serve this many sessions, then exit. |
//! | `WATERWISE_MULTI_SESSION` | — | Host this many concurrent sessions on one engine run. |
//! | `WATERWISE_ADMISSION` | — | Multi-session drain mode: `streaming` (default) or `gated`. |
//! | `WATERWISE_TENANT_QUOTA` | — | Per-tenant in-flight quota (default 64). |
//! | `WATERWISE_DRR_QUANTUM` | — | Deficit-round-robin quantum (default 8). |
//! | `WATERWISE_JOURNAL` | — | Multi-session: write the admission journal to this path. |
//! | `WATERWISE_CACHE_PATH` | `[campaign] cache_path` | Warm-load the solution cache from this snapshot at startup and persist it back at shutdown. |
//! | `WATERWISE_JOURNAL_PATH` | — | Multi-session: *stream* the admission journal to this file as entries are admitted (crash durability). |
//! | `WATERWISE_RESUME` | — | `1`/`true`: replay a recovered `WATERWISE_JOURNAL_PATH` journal at startup, rebuilding warm state before new sessions. |

use std::path::{Path, PathBuf};
use waterwise_cluster::{ClockMode, EngineMode};
use waterwise_core::{
    build_scheduler, CacheAutosave, Scenario, SchedulerKind, SolutionCache, SolutionCacheHandle,
};
use waterwise_service::{
    AdmissionConfig, AdmissionMode, ClusterHost, HostPersistence, Journal, PlacementService,
    ServiceConfig, TcpClusterServer, TcpPlacementServer,
};
use waterwise_sustain::FootprintEstimator;

fn env_opt<T: std::str::FromStr>(key: &str) -> Option<T> {
    std::env::var(key).ok().and_then(|v| v.parse().ok())
}

/// Print the failure and exit with the operator-error status. The serving
/// loops report per-session errors instead; this is for startup-time
/// misconfiguration (bad spec, unbindable address).
fn exit_with(message: std::fmt::Arguments<'_>) -> ! {
    eprintln!("{message}");
    std::process::exit(2);
}

/// `--scenario <path>` / `--scenario=<path>` / `WATERWISE_SCENARIO`, else
/// `server_default.spec` under `WATERWISE_SCENARIO_DIR` or the workspace
/// `scenarios/` directory.
fn spec_path() -> PathBuf {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--scenario" {
            if let Some(path) = args.next() {
                return PathBuf::from(path);
            }
        }
        if let Some(path) = arg.strip_prefix("--scenario=") {
            return PathBuf::from(path);
        }
    }
    if let Some(path) = std::env::var_os("WATERWISE_SCENARIO") {
        return PathBuf::from(path);
    }
    std::env::var_os("WATERWISE_SCENARIO_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("..")
                .join("..")
                .join("scenarios")
        })
        .join("server_default.spec")
}

fn load_scenario_or_exit() -> Scenario {
    let path = spec_path();
    match waterwise_core::load_spec(&path) {
        Ok(scenario) => scenario,
        Err(err) => exit_with(format_args!(
            "invalid scenario spec: {}",
            err.located(path.display())
        )),
    }
}

fn clock_override() -> Option<ClockMode> {
    let raw = std::env::var("WATERWISE_CLOCK").ok()?;
    if raw == "discrete" {
        return Some(ClockMode::Discrete);
    }
    let scale = raw
        .strip_prefix("real-time:")
        .or_else(|| raw.strip_prefix("realtime:"))
        .and_then(|s| s.parse().ok())
        .unwrap_or(60.0);
    Some(ClockMode::RealTime { scale })
}

/// The solution-cache persistence setup: `WATERWISE_CACHE_PATH` (falling
/// back to the spec's `[campaign] cache_path`) names a snapshot that is
/// warm-loaded at startup (missing file = cold start, corrupt file =
/// startup error) and written back by the returned autosave guard at
/// shutdown.
fn cache_setup(scenario: &Scenario) -> (Option<SolutionCacheHandle>, Option<CacheAutosave>) {
    let path = std::env::var_os("WATERWISE_CACHE_PATH")
        .map(PathBuf::from)
        .or_else(|| scenario.config.cache_path.clone());
    let Some(path) = path else {
        return (None, None);
    };
    let config_hash = scenario.config.solver_config_hash();
    let cache = if path.exists() {
        match SolutionCache::load(&path, config_hash) {
            Ok(cache) => {
                eprintln!(
                    "solution cache warm-loaded: {} entries from {}",
                    cache.len(),
                    path.display()
                );
                cache.into_handle()
            }
            Err(error) => exit_with(format_args!("failed to load cache snapshot: {error}")),
        }
    } else {
        SolutionCache::shared()
    };
    let guard = CacheAutosave::new(cache.clone(), path, config_hash);
    (Some(cache), Some(guard))
}

/// Finish the autosave guard, surfacing (but not dying on) write errors —
/// the placements were already served; a failed snapshot only costs the
/// next process its warm start.
fn finish_autosave(guard: Option<CacheAutosave>) {
    if let Some(guard) = guard {
        if let Err(error) = guard.finish() {
            eprintln!("failed to persist the solution cache: {error}");
        }
    }
}

/// Journal durability from the environment: `WATERWISE_JOURNAL_PATH`
/// streams the admission journal to disk; `WATERWISE_RESUME=1` first
/// replays whatever journal survived at that path.
fn persistence_setup() -> HostPersistence {
    let mut persistence = HostPersistence::default();
    let Some(path) = std::env::var_os("WATERWISE_JOURNAL_PATH").map(PathBuf::from) else {
        return persistence;
    };
    let resume = matches!(
        std::env::var("WATERWISE_RESUME").as_deref(),
        Ok("1") | Ok("true")
    );
    if resume && path.exists() {
        match Journal::load(&path) {
            Ok(journal) => {
                eprintln!(
                    "resuming: {} admitted entries recovered from {}",
                    journal.entries.len(),
                    path.display()
                );
                persistence = persistence.with_resume(journal);
            }
            Err(error) => exit_with(format_args!("failed to recover journal: {error}")),
        }
    }
    persistence.with_journal_path(path)
}

/// The multi-session admission policy from the environment.
fn admission_config(concurrent: usize) -> AdmissionConfig {
    let mut config = AdmissionConfig {
        mode: AdmissionMode::Streaming {
            close_after_sessions: Some(concurrent),
        },
        ..AdmissionConfig::default()
    };
    if let Some(quota) = env_opt::<usize>("WATERWISE_TENANT_QUOTA") {
        config.tenant_inflight_quota = quota;
    }
    if let Some(quantum) = env_opt::<usize>("WATERWISE_DRR_QUANTUM") {
        config.drr_quantum = quantum;
    }
    if std::env::var("WATERWISE_ADMISSION").as_deref() == Ok("gated") {
        config.mode = AdmissionMode::Gated {
            sessions: concurrent,
        };
    }
    config
}

/// Host `concurrent` simultaneous sessions on one persistent engine run.
fn serve_multi_session(
    service: PlacementService,
    scenario: &Scenario,
    addr: &str,
    concurrent: usize,
) {
    let (cache, autosave) = cache_setup(scenario);
    let scheduler = build_scheduler(
        SchedulerKind::WaterWise,
        service.telemetry(),
        FootprintEstimator::new(service.config().simulation.datacenter),
        &scenario.config.waterwise,
        cache,
    );
    let admission = admission_config(concurrent);
    let persistence = persistence_setup();
    let host = match ClusterHost::start_persistent(service, admission, scheduler, persistence) {
        Ok(host) => host,
        Err(error) => exit_with(format_args!("failed to start cluster host: {error}")),
    };
    let server = match TcpClusterServer::bind(addr) {
        Ok(server) => server,
        Err(error) => exit_with(format_args!("failed to bind {addr}: {error}")),
    };
    match server.local_addr() {
        Ok(local) => eprintln!(
            "placement_server hosting {concurrent} concurrent sessions on {local} \
             (scenario {}, seed {})",
            scenario.name, scenario.seed,
        ),
        Err(error) => exit_with(format_args!("listener has no local address: {error}")),
    }
    if let Err(error) = server.serve_sessions(&host, concurrent) {
        eprintln!("multi-session serve ended with a session failure: {error}");
    }
    match host.shutdown() {
        Ok(report) => {
            eprintln!(
                "host done: {} sessions, {} tenants, accepted {}, rejected {}, served {}, \
                 makespan {:.0} s, digest {:016x}",
                report.sessions,
                report.tenants.len(),
                report.accepted,
                report.rejected,
                report.served,
                report.report.makespan.value(),
                report.schedule_digest(),
            );
            if let Some(path) = std::env::var_os("WATERWISE_JOURNAL") {
                match std::fs::write(&path, report.journal.encode()) {
                    Ok(()) => eprintln!(
                        "admission journal ({} entries) written to {}",
                        report.journal.entries.len(),
                        PathBuf::from(&path).display()
                    ),
                    Err(error) => eprintln!("failed to write journal: {error}"),
                }
            }
        }
        Err(error) => exit_with(format_args!("host failed: {error}")),
    }
    finish_autosave(autosave);
}

fn main() {
    let mut scenario = load_scenario_or_exit();
    if let Some(seed) = env_opt::<u64>("WATERWISE_SEED") {
        scenario = scenario.with_seed(seed);
    }
    let mut simulation = scenario.config.simulation.clone();
    if let Some(servers) = env_opt::<usize>("WATERWISE_SERVERS") {
        for (_, n) in &mut simulation.regions {
            *n = servers;
        }
    }
    if let Some(tolerance) = env_opt::<f64>("WATERWISE_TOLERANCE") {
        simulation.delay_tolerance = tolerance;
    }
    if let Some(workers) = env_opt::<usize>("WATERWISE_WORKERS") {
        simulation.engine = if workers == 0 {
            EngineMode::Sync
        } else {
            EngineMode::Pipelined { workers }
        };
    }
    let engine = simulation.engine;
    let clock = clock_override().unwrap_or(scenario.clock);
    let telemetry = scenario.config.telemetry;
    let addr = std::env::var("WATERWISE_ADDR").unwrap_or_else(|_| "127.0.0.1:7878".to_string());
    let sessions: usize = env_opt("WATERWISE_SESSIONS").unwrap_or(usize::MAX);

    let service =
        match PlacementService::new(ServiceConfig::new(simulation, telemetry).with_clock(clock)) {
            Ok(service) => service,
            Err(error) => exit_with(format_args!("invalid service configuration: {error}")),
        };

    if let Some(concurrent) = env_opt::<usize>("WATERWISE_MULTI_SESSION") {
        serve_multi_session(service, &scenario, &addr, concurrent.max(1));
        return;
    }

    let server = match TcpPlacementServer::bind(&addr) {
        Ok(server) => server,
        Err(error) => exit_with(format_args!("failed to bind {addr}: {error}")),
    };
    match server.local_addr() {
        Ok(local) => eprintln!(
            "placement_server listening on {local} (scenario {}, clock {}, engine {}, seed {})",
            scenario.name,
            clock.label(),
            engine.label(),
            scenario.seed,
        ),
        Err(error) => exit_with(format_args!("listener has no local address: {error}")),
    }

    let (cache, autosave) = cache_setup(&scenario);
    for session in 0..sessions {
        // One fresh WaterWise scheduler per session: sessions are
        // independent campaigns — but they share the (optionally
        // persistent) solution cache, so later sessions start warm.
        let mut scheduler = build_scheduler(
            SchedulerKind::WaterWise,
            service.telemetry(),
            FootprintEstimator::new(service.config().simulation.datacenter),
            &scenario.config.waterwise,
            cache.clone(),
        );
        match server.serve_connection(&service, scheduler.as_mut()) {
            Ok(report) => eprintln!(
                "session {session}: accepted {}, rejected {}, served {}, \
                 makespan {:.0} s, total {:.1} gCO2 / {:.1} L",
                report.accepted,
                report.rejected,
                report.served,
                report.report.makespan.value(),
                report.report.summary.total_carbon.value(),
                report.report.summary.total_water.value(),
            ),
            Err(error) => eprintln!("session {session} failed: {error}"),
        }
    }
    finish_autosave(autosave);
}
