//! `placement_server` — stand-alone TCP placement service.
//!
//! Serves the line-delimited-JSON placement protocol (one client session at
//! a time; each session is one campaign). The base configuration is a
//! declarative scenario spec — `scenarios/server_default.spec` unless
//! `--scenario <path>` / `WATERWISE_SCENARIO` names another file (grammar:
//! `docs/SCENARIOS.md`) — and individual environment variables override
//! knobs on top of it; see `docs/ONLINE_SERVICE.md` for the operator's
//! guide.
//!
//! | Variable | Overrides | Meaning |
//! |---|---|---|
//! | `WATERWISE_ADDR` | — | Listen address, default `127.0.0.1:7878` (`:0` for ephemeral). |
//! | `WATERWISE_SCENARIO` | the whole spec | Path of the scenario spec file. |
//! | `WATERWISE_CLOCK` | `[simulation] clock` | `discrete` or `real-time:<scale>`. |
//! | `WATERWISE_WORKERS` | `[simulation] engine` | `0` = synchronous engine, else pipelined workers. |
//! | `WATERWISE_SERVERS` | `[simulation] servers_per_region` | Servers per region. |
//! | `WATERWISE_TOLERANCE` | `[simulation] delay_tolerance` | Delay tolerance (fraction of execution time). |
//! | `WATERWISE_SEED` | `[scenario] seed` | Trace + telemetry seed. |
//! | `WATERWISE_SESSIONS` | — | Serve this many sessions, then exit (default unbounded). |

use std::path::{Path, PathBuf};
use waterwise_cluster::{ClockMode, EngineMode};
use waterwise_core::{build_scheduler, Scenario, SchedulerKind};
use waterwise_service::{PlacementService, ServiceConfig, TcpPlacementServer};
use waterwise_sustain::FootprintEstimator;

fn env_opt<T: std::str::FromStr>(key: &str) -> Option<T> {
    std::env::var(key).ok().and_then(|v| v.parse().ok())
}

/// `--scenario <path>` / `--scenario=<path>` / `WATERWISE_SCENARIO`, else
/// `server_default.spec` under `WATERWISE_SCENARIO_DIR` or the workspace
/// `scenarios/` directory.
fn spec_path() -> PathBuf {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--scenario" {
            if let Some(path) = args.next() {
                return PathBuf::from(path);
            }
        }
        if let Some(path) = arg.strip_prefix("--scenario=") {
            return PathBuf::from(path);
        }
    }
    if let Some(path) = std::env::var_os("WATERWISE_SCENARIO") {
        return PathBuf::from(path);
    }
    std::env::var_os("WATERWISE_SCENARIO_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("..")
                .join("..")
                .join("scenarios")
        })
        .join("server_default.spec")
}

fn load_scenario_or_exit() -> Scenario {
    let path = spec_path();
    match waterwise_core::load_spec(&path) {
        Ok(scenario) => scenario,
        Err(err) => {
            eprintln!("invalid scenario spec: {}", err.located(path.display()));
            std::process::exit(2);
        }
    }
}

fn clock_override() -> Option<ClockMode> {
    let raw = std::env::var("WATERWISE_CLOCK").ok()?;
    if raw == "discrete" {
        return Some(ClockMode::Discrete);
    }
    let scale = raw
        .strip_prefix("real-time:")
        .or_else(|| raw.strip_prefix("realtime:"))
        .and_then(|s| s.parse().ok())
        .unwrap_or(60.0);
    Some(ClockMode::RealTime { scale })
}

fn main() {
    let mut scenario = load_scenario_or_exit();
    if let Some(seed) = env_opt::<u64>("WATERWISE_SEED") {
        scenario = scenario.with_seed(seed);
    }
    let mut simulation = scenario.config.simulation.clone();
    if let Some(servers) = env_opt::<usize>("WATERWISE_SERVERS") {
        for (_, n) in &mut simulation.regions {
            *n = servers;
        }
    }
    if let Some(tolerance) = env_opt::<f64>("WATERWISE_TOLERANCE") {
        simulation.delay_tolerance = tolerance;
    }
    if let Some(workers) = env_opt::<usize>("WATERWISE_WORKERS") {
        simulation.engine = if workers == 0 {
            EngineMode::Sync
        } else {
            EngineMode::Pipelined { workers }
        };
    }
    let engine = simulation.engine;
    let clock = clock_override().unwrap_or(scenario.clock);
    let telemetry = scenario.config.telemetry;
    let addr = std::env::var("WATERWISE_ADDR").unwrap_or_else(|_| "127.0.0.1:7878".to_string());
    let sessions: usize = env_opt("WATERWISE_SESSIONS").unwrap_or(usize::MAX);

    let service =
        PlacementService::new(ServiceConfig::new(simulation, telemetry).with_clock(clock))
            .expect("valid service configuration");
    let server = TcpPlacementServer::bind(&addr).expect("bind listen address");
    eprintln!(
        "placement_server listening on {} (scenario {}, clock {}, engine {}, seed {})",
        server.local_addr().expect("bound address"),
        scenario.name,
        clock.label(),
        engine.label(),
        scenario.seed,
    );

    for session in 0..sessions {
        // One fresh WaterWise scheduler per session: sessions are
        // independent campaigns.
        let mut scheduler = build_scheduler(
            SchedulerKind::WaterWise,
            service.telemetry(),
            FootprintEstimator::new(service.config().simulation.datacenter),
            &scenario.config.waterwise,
            None,
        );
        match server.serve_connection(&service, scheduler.as_mut()) {
            Ok(report) => eprintln!(
                "session {session}: accepted {}, rejected {}, served {}, \
                 makespan {:.0} s, total {:.1} gCO2 / {:.1} L",
                report.accepted,
                report.rejected,
                report.served,
                report.report.makespan.value(),
                report.report.summary.total_carbon.value(),
                report.report.summary.total_water.value(),
            ),
            Err(error) => eprintln!("session {session} failed: {error}"),
        }
    }
}
