//! Poison-recovering synchronization helpers.
//!
//! The service shares small maps and the admission state across its
//! ingestion/enrichment/session threads behind mutexes. A panicking holder
//! poisons the lock, and the default `.lock().expect(...)` response turns
//! that one panic into a cascade that takes the whole host down with an
//! unrelated message — the DET003 failure class the workspace lint bans in
//! schedule-affecting crates. These helpers implement the sanctioned
//! recovery instead: locks are taken poison-recovering (every protected
//! invariant here survives a mid-update panic, because updates are either
//! single writes or are re-validated by the reader), and joined threads
//! re-raise their own panic payload via [`std::panic::resume_unwind`] so
//! the original failure surfaces with its original message.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::{JoinHandle, ScopedJoinHandle};

/// Lock `mutex`, recovering the guard from a poisoned lock. Callers must
/// only protect state that stays consistent across a panicking holder (see
/// module docs).
pub(crate) fn lock_clean<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Wait on `condvar`, recovering the re-acquired guard from a poisoned
/// lock.
pub(crate) fn wait_clean<'a, T>(condvar: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    condvar.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

/// Join a scoped thread, propagating its panic — if any — with the
/// original payload instead of a generic `.expect` message.
pub(crate) fn join_or_resume<T>(handle: ScopedJoinHandle<'_, T>) -> T {
    match handle.join() {
        Ok(value) => value,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

/// [`join_or_resume`] for owned (non-scoped) threads — the host's
/// long-lived engine thread.
pub(crate) fn join_owned_or_resume<T>(handle: JoinHandle<T>) -> T {
    match handle.join() {
        Ok(value) => value,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}
