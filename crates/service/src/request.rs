//! The request/response pair of the placement service.

use waterwise_cluster::SolverActivity;
use waterwise_sustain::{DecisionProjection, Seconds};
use waterwise_telemetry::Region;
use waterwise_traces::{JobId, JobSpec};

/// One job placement request.
///
/// A request is a [`JobSpec`] wrapped for the service: the client describes
/// the job (benchmark, home region, resource estimates) and the service
/// decides where it runs. Under [`waterwise_cluster::ClockMode::Discrete`]
/// the spec's `submit_time` is authoritative and must be non-decreasing
/// across the session; under `RealTime` the service re-stamps it from the
/// scaled wall clock at ingestion.
///
/// ```
/// use waterwise_service::PlacementRequest;
/// use waterwise_sustain::{KilowattHours, Seconds};
/// use waterwise_telemetry::Region;
/// use waterwise_traces::{Benchmark, JobId, JobSpec};
///
/// let request = PlacementRequest::new(JobSpec {
///     id: JobId(1),
///     benchmark: Benchmark::Canneal,
///     submit_time: Seconds::new(12.5),
///     home_region: Region::Oregon,
///     actual_execution_time: Seconds::new(600.0),
///     actual_energy: KilowattHours::new(0.05),
///     estimated_execution_time: Seconds::new(660.0),
///     estimated_energy: KilowattHours::new(0.055),
///     package_bytes: 1024,
/// });
/// assert_eq!(request.spec.id, JobId(1));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementRequest {
    /// The requested job. The scheduler only ever sees the *estimated*
    /// execution time and energy; the simulation charges the actuals.
    pub spec: JobSpec,
}

impl PlacementRequest {
    /// Wrap a job spec as a placement request.
    pub fn new(spec: JobSpec) -> Self {
        Self { spec }
    }
}

/// The service's answer to one [`PlacementRequest`], produced when the
/// scheduler commits the job's placement.
///
/// Everything except `region`/`slot` is a *projection* evaluated at
/// decision time from the scheduler-visible estimates and the ground-truth
/// conditions at the projected start: the actual footprint and completion
/// are only known after the job runs (they land in the campaign's
/// [`waterwise_cluster::JobOutcome`]s). `projected_start` assumes a free
/// server after the package transfer; queueing in the target region can
/// push the real start later.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementResponse {
    /// The placed job.
    pub job: JobId,
    /// The region that will execute it.
    pub region: Region,
    /// Index of the scheduling round that placed it (0-based).
    pub slot: usize,
    /// Simulated time of the placing round.
    pub decided_at: Seconds,
    /// The submit time the job was stamped with at ingestion.
    pub submitted_at: Seconds,
    /// Scheduling rounds the job was deferred before placement (slack
    /// management at work: 0 means it was placed in its first round).
    pub deferrals: u32,
    /// Earliest execution start: decision time plus package transfer.
    pub projected_start: Seconds,
    /// `projected_start` plus the *estimated* execution time.
    pub projected_completion: Seconds,
    /// Latest completion satisfying the configured delay tolerance,
    /// evaluated on the estimated execution time.
    pub deadline: Seconds,
    /// Whether `projected_completion` meets `deadline` (with a small
    /// epsilon). `false` flags placements that already overshoot their
    /// slack at decision time.
    pub deadline_feasible: bool,
    /// Projected carbon/water footprint of the decision (execution +
    /// transfer) under the conditions at the projected start.
    pub projection: DecisionProjection,
    /// Solver work the placing round performed, when the scheduler runs an
    /// optimization solver (per-round delta — the scheduler-snapshot
    /// enrichment of the response).
    pub solver: Option<SolverActivity>,
}
