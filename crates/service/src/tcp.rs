//! The line-delimited-JSON TCP front-end, built on `std::net` only.
//!
//! One connection is one serving session: the client writes one request
//! per line ([`crate::wire::parse_request`]), the server writes one
//! response per line as placements commit (`{"type":"placement",...}`),
//! plus in-band `{"type":"error",...}` lines for requests that never reach
//! the engine (malformed lines, duplicate ids — the session keeps going).
//! The client ends the session by half-closing its write side (or closing
//! the connection); the server then drains every admitted job, flushes the
//! remaining responses, and closes. See `docs/ONLINE_SERVICE.md` for the
//! full protocol, a worked example, and the shutdown semantics.

use crate::admission::TenantId;
use crate::error::ServiceError;
use crate::host::{ClusterHost, HostSession};
use crate::request::PlacementRequest;
use crate::service::{PlacementService, ServiceReport};
use crate::source::RequestSource;
use crate::sync::{join_or_resume, lock_clean};
use crate::wire;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::{Arc, Mutex};
use waterwise_cluster::Scheduler;

/// The typed `code` field of in-band error lines, by failure class.
pub(crate) fn error_code_for(error: &ServiceError) -> &'static str {
    match error {
        ServiceError::MalformedRequest { .. } => "malformed",
        ServiceError::DuplicateRequest { .. } => "duplicate",
        ServiceError::AdmissionRejected { .. } => "admission_rejected",
        ServiceError::ServiceStopped | ServiceError::SessionLimit { .. } => "session_closed",
        _ => "error",
    }
}

/// A TCP listener serving the placement wire protocol.
///
/// Bind to port 0 for an ephemeral port (the pattern used by the CI smoke
/// test and the `fig17_service` benchmark):
///
/// ```no_run
/// use waterwise_core::{build_scheduler, SchedulerKind, WaterWiseConfig};
/// use waterwise_service::{PlacementService, ServiceConfig, TcpPlacementServer};
/// use waterwise_sustain::FootprintEstimator;
///
/// let service = PlacementService::new(ServiceConfig::small_demo(42)).unwrap();
/// let server = TcpPlacementServer::bind("127.0.0.1:0").unwrap();
/// println!("serving on {}", server.local_addr().unwrap());
/// let mut scheduler = build_scheduler(
///     SchedulerKind::WaterWise,
///     service.telemetry(),
///     FootprintEstimator::new(service.config().simulation.datacenter),
///     &WaterWiseConfig::default(),
///     None,
/// );
/// // Blocks until a client connects, streams requests, and hangs up.
/// let report = server.serve_connection(&service, scheduler.as_mut()).unwrap();
/// println!("placed {} jobs", report.served);
/// ```
pub struct TcpPlacementServer {
    listener: TcpListener,
}

impl TcpPlacementServer {
    /// Bind the listener.
    pub fn bind(addr: impl ToSocketAddrs) -> Result<Self, ServiceError> {
        Ok(Self {
            listener: TcpListener::bind(addr)?,
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> Result<SocketAddr, ServiceError> {
        Ok(self.listener.local_addr()?)
    }

    /// Accept one client connection and serve it to completion: requests
    /// are read off the socket, responses and in-band errors are written
    /// back, and the call returns when the client ends its request stream
    /// and the session drains. Serve several clients by calling this in a
    /// loop (sessions are sequential by design — one engine, one
    /// campaign per session).
    pub fn serve_connection(
        &self,
        service: &PlacementService,
        scheduler: &mut dyn Scheduler,
    ) -> Result<ServiceReport, ServiceError> {
        let (stream, _peer) = self.listener.accept()?;
        let writer = Arc::new(Mutex::new(stream.try_clone()?));
        let source = TcpSource {
            reader: BufReader::new(stream.try_clone()?),
            stream,
            writer: writer.clone(),
            line: 0,
        };
        let (response_tx, response_rx) =
            std::sync::mpsc::sync_channel(service.config().notice_queue.max(1));
        std::thread::scope(|scope| {
            let response_writer = scope.spawn({
                let writer = writer.clone();
                move || -> Result<(), ServiceError> {
                    for response in response_rx.iter() {
                        let line = wire::encode_response(&response);
                        let mut guard = lock_clean(&writer);
                        guard.write_all(line.as_bytes())?;
                        guard.write_all(b"\n")?;
                        guard.flush()?;
                    }
                    Ok(())
                }
            });
            let report = service.serve(source, scheduler, response_tx);
            let written = join_or_resume(response_writer);
            let report = report?;
            // A broken client pipe surfaces as ResponseSinkClosed through
            // `serve` (the writer drops the receiver); only report a write
            // failure that `serve` itself did not notice.
            written?;
            Ok(report)
        })
    }
}

/// [`RequestSource`] over one accepted TCP connection.
struct TcpSource {
    reader: BufReader<TcpStream>,
    /// The connection itself, kept for the interrupter's shutdown.
    stream: TcpStream,
    /// Shared with the response writer: in-band error lines interleave
    /// with placement lines, each written atomically under the lock.
    writer: Arc<Mutex<TcpStream>>,
    line: usize,
}

impl TcpSource {
    fn write_error(&self, code: &str, job: Option<waterwise_traces::JobId>, message: &str) {
        write_error_line(&self.writer, code, job, message);
    }
}

/// Write one in-band error line under the shared writer lock. A client
/// that hung up cannot receive its error report; dropping it is fine (the
/// read side notices the hangup).
pub(crate) fn write_error_line(
    writer: &Mutex<TcpStream>,
    code: &str,
    job: Option<waterwise_traces::JobId>,
    message: &str,
) {
    let line = wire::encode_error(code, job, message);
    let mut guard = lock_clean(writer);
    let _ = guard.write_all(line.as_bytes());
    let _ = guard.write_all(b"\n");
    let _ = guard.flush();
}

/// The multi-session TCP front-end: concurrent client connections served
/// against one [`ClusterHost`] (one persistent engine run, shared
/// admission queue, per-tenant quotas and fairness).
///
/// The wire protocol is the single-session one plus an optional `tenant`
/// string field per request: absent, a request is admitted under its
/// connection's default tenant (`client-<accept index>`). Per-request
/// failures — malformed lines, duplicate ids, quota rejections
/// (`"code":"admission_rejected"`) — are answered in-band and the session
/// keeps going; a client ends its session by half-closing, and its
/// remaining responses are flushed before the server closes the
/// connection. An abrupt disconnect discards that session's undelivered
/// responses without disturbing the other sessions or the host.
pub struct TcpClusterServer {
    listener: TcpListener,
}

impl TcpClusterServer {
    /// Bind the listener (port 0 for an ephemeral port).
    pub fn bind(addr: impl ToSocketAddrs) -> Result<Self, ServiceError> {
        Ok(Self {
            listener: TcpListener::bind(addr)?,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> Result<SocketAddr, ServiceError> {
        Ok(self.listener.local_addr()?)
    }

    /// Accept `sessions` connections and serve them **concurrently**
    /// against `host`, returning once every session has ended and
    /// drained. Pair the session count with the host's admission mode
    /// ([`crate::AdmissionMode::Streaming`] `close_after_sessions` or
    /// [`crate::AdmissionMode::Gated`] `sessions`): the host auto-closing
    /// after the final session is what lets the engine drain the last
    /// placements (under the discrete clock nothing else advances time),
    /// and therefore what lets this call return.
    ///
    /// The first session-level failure (transport setup, session-limit) is
    /// returned after all sessions finish; in-band per-request errors are
    /// not failures.
    pub fn serve_sessions(&self, host: &ClusterHost, sessions: usize) -> Result<(), ServiceError> {
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(sessions);
            let mut accept_error = None;
            for index in 0..sessions {
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        handles.push(scope.spawn(move || {
                            serve_host_session(
                                host,
                                stream,
                                TenantId::new(format!("client-{index}")),
                            )
                        }));
                    }
                    Err(e) => {
                        accept_error = Some(ServiceError::from(e));
                        break;
                    }
                }
            }
            let mut result = match accept_error {
                Some(error) => Err(error),
                None => Ok(()),
            };
            for handle in handles {
                let session_result = join_or_resume(handle);
                if result.is_ok() {
                    result = session_result;
                }
            }
            result
        })
    }
}

/// Serve one accepted connection as one host session: read requests (with
/// optional per-request tenant override), answer failures in-band, stream
/// placements back from the session outbox, and end the session at EOF.
fn serve_host_session(
    host: &ClusterHost,
    stream: TcpStream,
    default_tenant: TenantId,
) -> Result<(), ServiceError> {
    let session = match host.open_session(default_tenant) {
        Ok(session) => session,
        Err(error) => {
            // Tell the client why before hanging up.
            let writer = Mutex::new(stream);
            write_error_line(&writer, error_code_for(&error), None, &error.to_string());
            return Err(error);
        }
    };
    let writer = Arc::new(Mutex::new(stream.try_clone()?));
    let mut reader = BufReader::new(stream);
    let responses = session.take_responses();
    std::thread::scope(|scope| {
        let response_writer = scope.spawn({
            let writer = writer.clone();
            move || -> bool {
                let Some(responses) = responses else {
                    return true;
                };
                for response in responses.iter() {
                    let line = wire::encode_response(&response);
                    let mut guard = lock_clean(&writer);
                    let written = guard
                        .write_all(line.as_bytes())
                        .and_then(|_| guard.write_all(b"\n"))
                        .and_then(|_| guard.flush());
                    if written.is_err() {
                        // Dead client: stop draining; the reader notices
                        // the hangup and the session is abandoned.
                        return false;
                    }
                }
                true
            }
        });
        read_session_requests(&session, &mut reader, &writer);
        session.finish();
        let client_alive = join_or_resume(response_writer);
        if !client_alive {
            // Discard undelivered responses instead of filling the outbox.
            session.abandon();
        }
    });
    Ok(())
}

/// The per-connection read loop: parse, submit, report failures in-band.
/// Returns at EOF or on a transport error (both end the request stream).
fn read_session_requests(
    session: &HostSession,
    reader: &mut BufReader<TcpStream>,
    writer: &Arc<Mutex<TcpStream>>,
) {
    let mut line_no = 0usize;
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => return, // EOF: client half-closed its write side.
            Ok(_) => {}
            Err(_) => return, // Abrupt disconnect: treat as end of stream.
        }
        line_no += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue; // Blank lines are keep-alive no-ops.
        }
        match wire::parse_tenant_request(trimmed) {
            Ok((tenant, request)) => {
                let id = request.spec.id;
                let submitted = match tenant {
                    Some(name) => session.submit_as(&TenantId::from(name), request.spec),
                    None => session.submit(request.spec),
                };
                if let Err(error) = submitted {
                    write_error_line(writer, error_code_for(&error), Some(id), &error.to_string());
                    if matches!(error, ServiceError::ServiceStopped) {
                        // The host is gone; nothing further can be served.
                        return;
                    }
                }
            }
            Err(message) => {
                let error = ServiceError::MalformedRequest {
                    line: line_no,
                    message,
                };
                write_error_line(writer, error_code_for(&error), None, &error.to_string());
            }
        }
    }
}

impl RequestSource for TcpSource {
    fn next(&mut self) -> Result<Option<PlacementRequest>, ServiceError> {
        loop {
            let mut line = String::new();
            match self.reader.read_line(&mut line) {
                Ok(0) => return Ok(None), // EOF: client half-closed.
                Ok(_) => {}
                // The interrupter shuts the socket down to unblock this
                // read; either way the stream is over.
                Err(_) => return Ok(None),
            }
            self.line += 1;
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue; // Blank lines are keep-alive no-ops.
            }
            match wire::parse_request(trimmed) {
                Ok(request) => return Ok(Some(request)),
                Err(message) => {
                    // Malformed input is a per-request failure: answer it
                    // in-band and keep the session alive.
                    let error = ServiceError::MalformedRequest {
                        line: self.line,
                        message,
                    };
                    self.write_error(error_code_for(&error), None, &error.to_string());
                }
            }
        }
    }

    fn reject(&mut self, request: &PlacementRequest, error: &ServiceError) {
        self.write_error(
            error_code_for(error),
            Some(request.spec.id),
            &error.to_string(),
        );
    }

    fn interrupter(&self) -> Option<Box<dyn Fn() + Send>> {
        let stream = match self.stream.try_clone() {
            Ok(stream) => stream,
            Err(_) => return None,
        };
        Some(Box::new(move || {
            let _ = stream.shutdown(Shutdown::Both);
        }))
    }
}
