//! The line-delimited-JSON TCP front-end, built on `std::net` only.
//!
//! One connection is one serving session: the client writes one request
//! per line ([`crate::wire::parse_request`]), the server writes one
//! response per line as placements commit (`{"type":"placement",...}`),
//! plus in-band `{"type":"error",...}` lines for requests that never reach
//! the engine (malformed lines, duplicate ids — the session keeps going).
//! The client ends the session by half-closing its write side (or closing
//! the connection); the server then drains every admitted job, flushes the
//! remaining responses, and closes. See `docs/ONLINE_SERVICE.md` for the
//! full protocol, a worked example, and the shutdown semantics.

use crate::error::ServiceError;
use crate::request::PlacementRequest;
use crate::service::{PlacementService, ServiceReport};
use crate::source::RequestSource;
use crate::wire;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::{Arc, Mutex};
use waterwise_cluster::Scheduler;

/// A TCP listener serving the placement wire protocol.
///
/// Bind to port 0 for an ephemeral port (the pattern used by the CI smoke
/// test and the `fig17_service` benchmark):
///
/// ```no_run
/// use waterwise_core::{build_scheduler, SchedulerKind, WaterWiseConfig};
/// use waterwise_service::{PlacementService, ServiceConfig, TcpPlacementServer};
/// use waterwise_sustain::FootprintEstimator;
///
/// let service = PlacementService::new(ServiceConfig::small_demo(42)).unwrap();
/// let server = TcpPlacementServer::bind("127.0.0.1:0").unwrap();
/// println!("serving on {}", server.local_addr().unwrap());
/// let mut scheduler = build_scheduler(
///     SchedulerKind::WaterWise,
///     service.telemetry(),
///     FootprintEstimator::new(service.config().simulation.datacenter),
///     &WaterWiseConfig::default(),
///     None,
/// );
/// // Blocks until a client connects, streams requests, and hangs up.
/// let report = server.serve_connection(&service, scheduler.as_mut()).unwrap();
/// println!("placed {} jobs", report.served);
/// ```
pub struct TcpPlacementServer {
    listener: TcpListener,
}

impl TcpPlacementServer {
    /// Bind the listener.
    pub fn bind(addr: impl ToSocketAddrs) -> Result<Self, ServiceError> {
        Ok(Self {
            listener: TcpListener::bind(addr)?,
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> Result<SocketAddr, ServiceError> {
        Ok(self.listener.local_addr()?)
    }

    /// Accept one client connection and serve it to completion: requests
    /// are read off the socket, responses and in-band errors are written
    /// back, and the call returns when the client ends its request stream
    /// and the session drains. Serve several clients by calling this in a
    /// loop (sessions are sequential by design — one engine, one
    /// campaign per session).
    pub fn serve_connection(
        &self,
        service: &PlacementService,
        scheduler: &mut dyn Scheduler,
    ) -> Result<ServiceReport, ServiceError> {
        let (stream, _peer) = self.listener.accept()?;
        let writer = Arc::new(Mutex::new(stream.try_clone()?));
        let source = TcpSource {
            reader: BufReader::new(stream.try_clone()?),
            stream,
            writer: writer.clone(),
            line: 0,
        };
        let (response_tx, response_rx) =
            std::sync::mpsc::sync_channel(service.config().notice_queue.max(1));
        std::thread::scope(|scope| {
            let response_writer = scope.spawn({
                let writer = writer.clone();
                move || -> Result<(), ServiceError> {
                    for response in response_rx.iter() {
                        let line = wire::encode_response(&response);
                        let mut guard = writer.lock().expect("response writer lock");
                        guard.write_all(line.as_bytes())?;
                        guard.write_all(b"\n")?;
                        guard.flush()?;
                    }
                    Ok(())
                }
            });
            let report = service.serve(source, scheduler, response_tx);
            let written = response_writer.join().expect("response writer panicked");
            let report = report?;
            // A broken client pipe surfaces as ResponseSinkClosed through
            // `serve` (the writer drops the receiver); only report a write
            // failure that `serve` itself did not notice.
            written?;
            Ok(report)
        })
    }
}

/// [`RequestSource`] over one accepted TCP connection.
struct TcpSource {
    reader: BufReader<TcpStream>,
    /// The connection itself, kept for the interrupter's shutdown.
    stream: TcpStream,
    /// Shared with the response writer: in-band error lines interleave
    /// with placement lines, each written atomically under the lock.
    writer: Arc<Mutex<TcpStream>>,
    line: usize,
}

impl TcpSource {
    fn write_error(&self, job: Option<waterwise_traces::JobId>, message: &str) {
        let line = wire::encode_error(job, message);
        if let Ok(mut guard) = self.writer.lock() {
            // A client that hung up cannot receive its error report;
            // dropping it is fine (the read side notices the hangup).
            let _ = guard.write_all(line.as_bytes());
            let _ = guard.write_all(b"\n");
            let _ = guard.flush();
        }
    }
}

impl RequestSource for TcpSource {
    fn next(&mut self) -> Result<Option<PlacementRequest>, ServiceError> {
        loop {
            let mut line = String::new();
            match self.reader.read_line(&mut line) {
                Ok(0) => return Ok(None), // EOF: client half-closed.
                Ok(_) => {}
                // The interrupter shuts the socket down to unblock this
                // read; either way the stream is over.
                Err(_) => return Ok(None),
            }
            self.line += 1;
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue; // Blank lines are keep-alive no-ops.
            }
            match wire::parse_request(trimmed) {
                Ok(request) => return Ok(Some(request)),
                Err(message) => {
                    // Malformed input is a per-request failure: answer it
                    // in-band and keep the session alive.
                    let error = ServiceError::MalformedRequest {
                        line: self.line,
                        message,
                    };
                    self.write_error(None, &error.to_string());
                }
            }
        }
    }

    fn reject(&mut self, request: &PlacementRequest, error: &ServiceError) {
        self.write_error(Some(request.spec.id), &error.to_string());
    }

    fn interrupter(&self) -> Option<Box<dyn Fn() + Send>> {
        let stream = match self.stream.try_clone() {
            Ok(stream) => stream,
            Err(_) => return None,
        };
        Some(Box::new(move || {
            let _ = stream.shutdown(Shutdown::Both);
        }))
    }
}
