//! Request sources: where placement requests come from.

use crate::error::ServiceError;
use crate::request::PlacementRequest;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::Arc;
use std::time::Duration;

/// A stream of placement requests feeding a
/// [`crate::PlacementService::serve`] session.
///
/// The service pulls requests one at a time on a dedicated ingestion
/// thread; returning `Ok(None)` ends the stream (the session then drains:
/// every admitted job is placed and completed before
/// [`crate::PlacementService::serve`] returns). A returned error terminates
/// the whole session — sources that can skip bad input (like the TCP
/// front-end, which answers malformed lines in-band) should do so instead
/// of erroring.
///
/// ```
/// use waterwise_service::{PlacementRequest, RequestSource, ServiceError};
///
/// /// A source that replays a fixed batch of requests, then ends.
/// struct Replay(Vec<PlacementRequest>);
///
/// impl RequestSource for Replay {
///     fn next(&mut self) -> Result<Option<PlacementRequest>, ServiceError> {
///         Ok(if self.0.is_empty() { None } else { Some(self.0.remove(0)) })
///     }
/// }
///
/// let mut source = Replay(Vec::new());
/// assert!(matches!(source.next(), Ok(None)));
/// ```
pub trait RequestSource: Send {
    /// Pull the next request, blocking until one is available, the stream
    /// ends (`Ok(None)`), or the source fails.
    fn next(&mut self) -> Result<Option<PlacementRequest>, ServiceError>;

    /// The service rejected `request` before it reached the engine (for
    /// example a duplicate id). Sources with a back-channel — the TCP
    /// front-end writes an error line — can report it to the client; the
    /// default does nothing.
    fn reject(&mut self, request: &PlacementRequest, error: &ServiceError) {
        let _ = (request, error);
    }

    /// A handle the service can invoke from another thread to unblock a
    /// pending [`RequestSource::next`] when the session must terminate
    /// early (an engine failure mid-stream). After the interrupter fires,
    /// `next` should return `Ok(None)` promptly. Sources without one
    /// (`None`, the default) simply keep the failed session alive until
    /// their stream ends on its own.
    fn interrupter(&self) -> Option<Box<dyn Fn() + Send>> {
        None
    }
}

/// Create a bounded in-process request channel: the [`RequestSender`] half
/// goes to request producers (clone it freely), the [`ChannelSource`] half
/// goes to [`crate::PlacementService::serve`]. When the channel holds
/// `capacity` unconsumed requests, [`RequestSender::submit`] blocks — the
/// service's ingestion backpressure, end to end: a slow engine slows the
/// ingestion thread, which fills this channel, which blocks producers.
///
/// ```
/// use waterwise_service::{channel_source, PlacementRequest, RequestSource};
/// use waterwise_sustain::{KilowattHours, Seconds};
/// use waterwise_telemetry::Region;
/// use waterwise_traces::{Benchmark, JobId, JobSpec};
///
/// let (sender, mut source) = channel_source(8);
/// sender.submit(PlacementRequest::new(JobSpec {
///     id: JobId(1),
///     benchmark: Benchmark::Dedup,
///     submit_time: Seconds::new(0.0),
///     home_region: Region::Milan,
///     actual_execution_time: Seconds::new(60.0),
///     actual_energy: KilowattHours::new(0.01),
///     estimated_execution_time: Seconds::new(60.0),
///     estimated_energy: KilowattHours::new(0.01),
///     package_bytes: 64,
/// })).unwrap();
/// drop(sender); // closing every sender ends the stream
/// assert!(source.next().unwrap().is_some());
/// assert!(source.next().unwrap().is_none());
/// ```
pub fn channel_source(capacity: usize) -> (RequestSender, ChannelSource) {
    let (tx, rx) = std::sync::mpsc::sync_channel(capacity.max(1));
    (
        RequestSender { tx },
        ChannelSource {
            rx,
            aborted: Arc::new(AtomicBool::new(false)),
        },
    )
}

/// The producer half of [`channel_source`]. Cloneable; the stream ends when
/// every clone is dropped.
#[derive(Debug, Clone)]
pub struct RequestSender {
    tx: SyncSender<PlacementRequest>,
}

impl RequestSender {
    /// Submit a request, blocking while the channel is full (ingestion
    /// backpressure). Fails with [`ServiceError::ServiceStopped`] once the
    /// serving session has ended.
    pub fn submit(&self, request: PlacementRequest) -> Result<(), ServiceError> {
        self.tx
            .send(request)
            .map_err(|_| ServiceError::ServiceStopped)
    }

    /// Submit without blocking; returns the request back if the channel is
    /// full so the caller can apply its own load-shedding policy.
    pub fn try_submit(
        &self,
        request: PlacementRequest,
    ) -> Result<(), Result<PlacementRequest, ServiceError>> {
        match self.tx.try_send(request) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(request)) => Err(Ok(request)),
            Err(TrySendError::Disconnected(_)) => Err(Err(ServiceError::ServiceStopped)),
        }
    }
}

/// The consuming half of [`channel_source`]: an in-process
/// [`RequestSource`].
#[derive(Debug)]
pub struct ChannelSource {
    rx: Receiver<PlacementRequest>,
    aborted: Arc<AtomicBool>,
}

impl RequestSource for ChannelSource {
    fn next(&mut self) -> Result<Option<PlacementRequest>, ServiceError> {
        // Poll instead of a bare blocking recv so the interrupter can end
        // the stream even while producers keep their senders alive.
        loop {
            if self.aborted.load(Ordering::Relaxed) {
                return Ok(None);
            }
            match self.rx.recv_timeout(Duration::from_millis(25)) {
                Ok(request) => return Ok(Some(request)),
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => return Ok(None),
            }
        }
    }

    fn interrupter(&self) -> Option<Box<dyn Fn() + Send>> {
        let aborted = self.aborted.clone();
        Some(Box::new(move || aborted.store(true, Ordering::Relaxed)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waterwise_sustain::{KilowattHours, Seconds};
    use waterwise_telemetry::Region;
    use waterwise_traces::{Benchmark, JobId, JobSpec};

    fn request(id: u64) -> PlacementRequest {
        PlacementRequest::new(JobSpec {
            id: JobId(id),
            benchmark: Benchmark::Dedup,
            submit_time: Seconds::new(0.0),
            home_region: Region::Oregon,
            actual_execution_time: Seconds::new(60.0),
            actual_energy: KilowattHours::new(0.01),
            estimated_execution_time: Seconds::new(60.0),
            estimated_energy: KilowattHours::new(0.01),
            package_bytes: 1,
        })
    }

    #[test]
    fn channel_source_delivers_in_order_and_ends_on_close() {
        let (sender, mut source) = channel_source(4);
        sender.submit(request(1)).unwrap();
        sender.submit(request(2)).unwrap();
        drop(sender);
        assert_eq!(source.next().unwrap().unwrap().spec.id, JobId(1));
        assert_eq!(source.next().unwrap().unwrap().spec.id, JobId(2));
        assert!(source.next().unwrap().is_none());
    }

    #[test]
    fn try_submit_sheds_load_when_full_and_detects_shutdown() {
        let (sender, source) = channel_source(1);
        assert!(sender.try_submit(request(1)).is_ok());
        match sender.try_submit(request(2)) {
            Err(Ok(returned)) => assert_eq!(returned.spec.id, JobId(2)),
            other => panic!("expected Full, got {other:?}"),
        }
        drop(source);
        assert!(matches!(
            sender.submit(request(3)),
            Err(ServiceError::ServiceStopped)
        ));
        assert!(matches!(
            sender.try_submit(request(4)),
            Err(Err(ServiceError::ServiceStopped))
        ));
    }
}
