//! The admission journal: the multi-session host's replayable record.
//!
//! A [`crate::ClusterHost`] journals every request it admits, in drain
//! order, with the arrival sequence the engine saw. The journal *is* the
//! determinism contract of a multi-session run: feeding its entries back
//! through the engine offline — same specs, same sequences, same order —
//! reproduces the live schedule byte-identically
//! ([`waterwise_cluster::schedule_digest`] equality), even though the
//! live run interleaved many racing session threads. That holds because
//! the engine orders work purely by `(time, sequence)` event keys: once
//! those are pinned in the journal, the thread interleaving that produced
//! them is irrelevant.
//!
//! The text form is one flat JSON object per line (the wire codec's
//! grammar plus `seq` and `tenant`), so journals survive a trip through
//! any line-oriented tooling:
//!
//! ```text
//! {"seq":4294967296,"tenant":"acme","id":7,"benchmark":"dedup",...}
//! ```

use crate::admission::TenantId;
use crate::error::ServiceError;
use crate::request::PlacementResponse;
use crate::service::PlacementService;
use crate::sync::join_or_resume;
use crate::wire;
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use waterwise_cluster::{
    ClockMode, OnlineReport, Scheduler, SequencedJob, ONLINE_ARRIVAL_SEQ_LIMIT,
};
use waterwise_traces::{JobId, JobSpec};

/// One admitted request: the spec the engine ingested (submit time already
/// monotonized against the host watermark) and its arrival sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEntry {
    /// The arrival sequence the engine broke exact-time ties with.
    pub seq: u64,
    /// The tenant the request was admitted under.
    pub tenant: TenantId,
    /// The admitted job, as stamped.
    pub spec: JobSpec,
}

/// A multi-session run's admitted requests, in drain (= engine receipt)
/// order. Produced by [`crate::HostReport::journal`]; replayed with
/// [`Journal::replay`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Journal {
    /// Entries in drain order.
    pub entries: Vec<JournalEntry>,
}

impl Journal {
    /// Render the journal as line-delimited flat JSON (one entry per
    /// line, trailing newline when non-empty).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        for entry in &self.entries {
            out.push_str(&encode_entry(entry));
            out.push('\n');
        }
        out
    }

    /// Parse a journal back from its [`Journal::encode`] text form. Blank
    /// lines are ignored; anything else that does not parse is a
    /// [`ServiceError::JournalMalformed`] naming the line.
    pub fn parse(text: &str) -> Result<Self, ServiceError> {
        let mut entries = Vec::new();
        for (index, line) in text.lines().enumerate() {
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            entries.push(parse_entry(trimmed).map_err(|message| {
                ServiceError::JournalMalformed {
                    line: index + 1,
                    message,
                }
            })?);
        }
        Ok(Self { entries })
    }

    /// Load a journal from its on-disk line-delimited form (the file a
    /// [`JournalWriter`] streams).
    ///
    /// Recovery semantics: the writer terminates every entry with a
    /// newline before the next one starts, so a crash can tear at most the
    /// *final, unterminated* line — which is silently dropped here (the
    /// entry never fully reached disk, exactly as if the crash had come
    /// one request earlier). Any *complete* line that does not parse is
    /// real corruption and fails typed
    /// ([`ServiceError::JournalMalformed`]); an unreadable file fails as
    /// [`ServiceError::JournalIo`] naming the path.
    pub fn load(path: &Path) -> Result<Self, ServiceError> {
        let text = std::fs::read_to_string(path).map_err(|error| ServiceError::JournalIo {
            path: path.to_path_buf(),
            message: error.to_string(),
        })?;
        let complete = match text.rfind('\n') {
            Some(last_newline) => &text[..last_newline + 1],
            // No newline at all: nothing fully reached disk.
            None => "",
        };
        Self::parse(complete)
    }

    /// Replay the journal offline: feed every entry, in order, through a
    /// fresh engine run with the journaled sequences under the discrete
    /// clock, and collect the placements. The replay's
    /// [`ReplayOutcome::schedule_digest`] must equal the live run's — that
    /// identity is what the multi-session test harness and the CI smoke
    /// job enforce.
    ///
    /// Always replays under [`ClockMode::Discrete`]: a real-time live
    /// run's journal carries the engine-stamped submit times (backfilled
    /// at shutdown), so the discrete replay re-derives the same event
    /// keys without waiting out wall-clock time again.
    pub fn replay(
        &self,
        service: &PlacementService,
        scheduler: &mut dyn Scheduler,
    ) -> Result<ReplayOutcome, ServiceError> {
        let mut routes: BTreeMap<JobId, (TenantId, JobSpec)> = BTreeMap::new();
        for entry in &self.entries {
            routes.insert(entry.spec.id, (entry.tenant.clone(), entry.spec.clone()));
        }
        let queue = self.entries.len().max(1);
        let (job_tx, job_rx) = std::sync::mpsc::sync_channel(queue);
        let (notice_tx, notice_rx) = std::sync::mpsc::sync_channel(queue);
        let report = std::thread::scope(|scope| {
            let entries = &self.entries;
            let feeder = scope.spawn(move || {
                for entry in entries {
                    let job = SequencedJob {
                        spec: entry.spec.clone(),
                        seq: entry.seq,
                    };
                    if job_tx.send(job).is_err() {
                        // The engine bailed early; its error is the story.
                        break;
                    }
                }
            });
            let collector = scope.spawn(move || notice_rx.iter().collect::<Vec<_>>());
            let report = service.simulator().run_online_sequenced(
                scheduler,
                job_rx,
                notice_tx,
                ClockMode::Discrete,
            );
            join_or_resume(feeder);
            let notices = join_or_resume(collector);
            report.map(|report| (report, notices))
        });
        let (report, notices) = report?;
        let mut responses: BTreeMap<TenantId, Vec<PlacementResponse>> = BTreeMap::new();
        for notice in notices {
            if let Some((tenant, spec)) = routes.get(&notice.job) {
                responses
                    .entry(tenant.clone())
                    .or_default()
                    .push(service.enrich(notice, spec));
            }
        }
        Ok(ReplayOutcome { report, responses })
    }
}

/// What a journal replay produced.
#[derive(Debug)]
pub struct ReplayOutcome {
    /// The replayed engine report; its outcomes digest must match the
    /// live run's.
    pub report: OnlineReport,
    /// The re-derived placement responses, grouped per tenant (each
    /// tenant's vector in placement-commit order).
    pub responses: BTreeMap<TenantId, Vec<PlacementResponse>>,
}

impl ReplayOutcome {
    /// FNV-1a digest of the replayed schedule, comparable against
    /// [`crate::HostReport::schedule_digest`].
    pub fn schedule_digest(&self) -> u64 {
        waterwise_cluster::schedule_digest(&self.report.report.outcomes)
    }
}

/// How many appended entries may accumulate between `fsync`s of the
/// journal file. Every append reaches the OS immediately (unbuffered
/// `write_all`), so a host *crash* loses nothing; only a whole-machine
/// power loss can cost up to this many tail entries — and a torn tail is
/// recovered cleanly by [`Journal::load`].
const SYNC_EVERY: u64 = 32;

/// Streams admission-journal entries to disk as the host admits them, in
/// the line-delimited [`Journal::encode`] form. The file is truncated on
/// creation (a resumed host first rewrites its recovered prefix through
/// the writer, repairing any torn tail), then grows one line per admitted
/// request, so at every instant the file is a loadable journal of
/// everything admitted so far.
#[derive(Debug)]
pub struct JournalWriter {
    file: std::fs::File,
    path: PathBuf,
    appended: u64,
}

impl JournalWriter {
    /// Create (truncating) the journal file at `path`.
    pub fn create(path: &Path) -> Result<Self, ServiceError> {
        let file = std::fs::File::create(path).map_err(|error| journal_io(path, &error))?;
        Ok(Self {
            file,
            path: path.to_path_buf(),
            appended: 0,
        })
    }

    /// Append one entry as a newline-terminated line, `fsync`ing every
    /// `SYNC_EVERY` (32) appends.
    pub fn append(&mut self, entry: &JournalEntry) -> Result<(), ServiceError> {
        let mut line = encode_entry(entry);
        line.push('\n');
        self.file
            .write_all(line.as_bytes())
            .map_err(|error| journal_io(&self.path, &error))?;
        self.appended += 1;
        if self.appended.is_multiple_of(SYNC_EVERY) {
            self.sync()?;
        }
        Ok(())
    }

    /// Flush everything appended so far to stable storage.
    pub fn sync(&mut self) -> Result<(), ServiceError> {
        self.file
            .sync_data()
            .map_err(|error| journal_io(&self.path, &error))
    }

    /// The file this writer streams to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

fn journal_io(path: &Path, error: &std::io::Error) -> ServiceError {
    ServiceError::JournalIo {
        path: path.to_path_buf(),
        message: error.to_string(),
    }
}

/// Render one entry as a flat JSON line.
pub(crate) fn encode_entry(entry: &JournalEntry) -> String {
    format!(
        "{{\"seq\":{},\"tenant\":{},{}}}",
        entry.seq,
        wire::json_string(entry.tenant.as_str()),
        wire::request_fields(&entry.spec)
    )
}

/// Parse one journal line.
fn parse_entry(line: &str) -> Result<JournalEntry, String> {
    let fields = wire::parse_flat_object(line)?;
    let seq = wire::number(&fields, "seq")?.ok_or("missing required field: seq")?;
    // Sequences are exact u64s in the low arrival band (< 2^48), so the
    // f64 round trip is lossless for every value the host can emit.
    if seq < 0.0 || seq.fract() != 0.0 || seq >= ONLINE_ARRIVAL_SEQ_LIMIT as f64 {
        return Err(format!(
            "seq must be a non-negative integer below 2^48, got {seq}"
        ));
    }
    let tenant = wire::string(&fields, "tenant")?.ok_or("missing required field: tenant")?;
    if tenant.is_empty() {
        return Err("tenant must be a non-empty string".to_string());
    }
    let request = wire::request_from_fields(&fields)?;
    Ok(JournalEntry {
        seq: seq as u64,
        tenant: TenantId::from(tenant),
        spec: request.spec,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use waterwise_sustain::{KilowattHours, Seconds};
    use waterwise_telemetry::Region;
    use waterwise_traces::Benchmark;

    fn entry(seq: u64, tenant: &str, id: u64) -> JournalEntry {
        JournalEntry {
            seq,
            tenant: TenantId::from(tenant),
            spec: JobSpec {
                id: JobId(id),
                benchmark: Benchmark::Canneal,
                submit_time: Seconds::new(12.5),
                home_region: Region::Oregon,
                actual_execution_time: Seconds::new(90.0),
                actual_energy: KilowattHours::new(0.02),
                estimated_execution_time: Seconds::new(80.0),
                estimated_energy: KilowattHours::new(0.018),
                package_bytes: 4096,
            },
        }
    }

    #[test]
    fn journals_round_trip_through_text() {
        let journal = Journal {
            entries: vec![entry(0, "acme", 1), entry(1 << 32, "umbrella", 2)],
        };
        let text = journal.encode();
        assert_eq!(text.lines().count(), 2);
        let parsed = Journal::parse(&text).unwrap();
        assert_eq!(parsed, journal);
        // Blank lines are tolerated.
        let padded = format!("\n{text}\n\n");
        assert_eq!(Journal::parse(&padded).unwrap(), journal);
    }

    #[test]
    fn malformed_journal_lines_name_the_line() {
        let good = encode_entry(&entry(3, "acme", 1));
        let bad = format!("{good}\n{{\"seq\":-1,\"tenant\":\"acme\",\"id\":2}}");
        match Journal::parse(&bad) {
            Err(ServiceError::JournalMalformed { line: 2, message }) => {
                assert!(message.contains("seq"), "{message}");
            }
            other => panic!("expected JournalMalformed on line 2, got {other:?}"),
        }
        let missing_tenant = "{\"seq\":1,\"id\":2,\"benchmark\":\"dedup\",\"home_region\":\"oregon\",\"execution_time\":1,\"energy\":0.1}";
        match Journal::parse(missing_tenant) {
            Err(ServiceError::JournalMalformed { line: 1, message }) => {
                assert!(message.contains("tenant"), "{message}");
            }
            other => panic!("expected JournalMalformed, got {other:?}"),
        }
        match Journal::parse("{\"seq\":281474976710656,\"tenant\":\"t\",\"id\":1}") {
            Err(ServiceError::JournalMalformed { line: 1, message }) => {
                assert!(message.contains("2^48"), "{message}");
            }
            other => panic!("expected band check, got {other:?}"),
        }
    }
}
