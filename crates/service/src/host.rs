//! The multi-tenant persistent placement host.
//!
//! Where [`crate::PlacementService::serve`] runs one source-to-drain
//! session per call, a [`ClusterHost`] keeps **one** engine run alive
//! across many concurrent sessions: it owns the persistent
//! [`crate::PlacementService`] (simulated cluster, telemetry, and — via
//! the engine — the scheduler's warmed solution cache and solver
//! workspace) and multiplexes sessions onto it through a shared
//! [`crate::AdmissionConfig`]-governed admission queue. Sessions submit
//! concurrently; requests drain tenant-fairly into a single
//! `run_online_sequenced` engine call; placements route back to the
//! session that asked.
//!
//! Three host-owned threads do the multiplexing:
//!
//! - the **feeder** blocks on the admission queue and forwards each
//!   drained request (already stamped, sequenced, and journaled) into the
//!   engine's bounded arrival channel;
//! - the **engine** thread runs the simulator's online driver for the
//!   whole host lifetime — one persistent run, so caches stay warm across
//!   sessions and one MILP round batches whatever the admission queue
//!   drained from *all* tenants since the last round;
//! - the **router** receives placement notices, enriches them into
//!   [`crate::PlacementResponse`]s, and delivers each to its session's
//!   bounded outbox.
//!
//! Determinism: the engine breaks exact-time ties by arrival sequence,
//! and every sequence is allocated from its session's private band
//! (`session << 32 | request index`), so the committed schedule does not
//! depend on how the racing session threads interleaved — and the
//! admission journal ([`HostReport::journal`]) replays offline to the
//! byte-identical schedule ([`crate::Journal::replay`]).
//!
//! Backpressure: every channel is bounded. A session that stops draining
//! its outbox eventually stalls the router and then the engine — on TCP
//! the per-connection writer thread always drains (a dead socket fails
//! the write, which drops the outbox). In-process callers should drain
//! [`HostSession::take_responses`] promptly or size
//! [`crate::ServiceConfig::notice_queue`] generously.

use crate::admission::{AdmissionConfig, AdmissionMode, AdmissionQueue, TenantId, TenantReport};
use crate::error::ServiceError;
use crate::journal::{Journal, JournalWriter};
use crate::request::PlacementResponse;
use crate::service::{PlacementService, ServiceConfig};
use crate::sync::{join_or_resume, join_owned_or_resume, lock_clean};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Receiver;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use waterwise_cluster::{
    ClockMode, OnlineReport, PlacementNotice, Scheduler, SequencedJob, SimulationReport,
};
use waterwise_traces::JobSpec;

/// Configuration of a [`ClusterHost`]: the underlying service (cluster,
/// telemetry, clock, queue depths) plus the multi-tenant admission
/// policy.
#[derive(Debug, Clone)]
pub struct HostConfig {
    /// The persistent service the host runs sessions against.
    pub service: ServiceConfig,
    /// Tenant quotas, fairness, and drain mode.
    pub admission: AdmissionConfig,
}

impl HostConfig {
    /// Host the given service with the default admission policy
    /// (streaming drain, quota 64, quantum 8, no auto-close).
    pub fn new(service: ServiceConfig) -> Self {
        Self {
            service,
            admission: AdmissionConfig::default(),
        }
    }

    /// Override the admission policy.
    pub fn with_admission(mut self, admission: AdmissionConfig) -> Self {
        self.admission = admission;
        self
    }
}

/// Durability knobs of a [`ClusterHost`]: where the admission journal
/// streams to, and the recovered journal to resume from. See
/// [`ClusterHost::start_persistent`].
#[derive(Debug, Default)]
pub struct HostPersistence {
    /// Stream the admission journal to this file as entries are admitted
    /// (truncated at startup; a resumed host first rewrites the recovered
    /// prefix, so the file is always the full combined journal).
    pub journal_path: Option<PathBuf>,
    /// Resume from this recovered journal: its entries are re-fed to the
    /// fresh engine as the head of the live stream, so the combined run is
    /// byte-identical to one that was never interrupted.
    pub resume: Option<Journal>,
}

impl HostPersistence {
    /// Stream the journal to `path`.
    pub fn with_journal_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.journal_path = Some(path.into());
        self
    }

    /// Resume from a recovered journal.
    pub fn with_resume(mut self, journal: Journal) -> Self {
        self.resume = Some(journal);
        self
    }
}

/// What a completed host run reports: one campaign spanning every
/// session, plus the admission journal and per-tenant accounting.
#[derive(Debug, Clone)]
pub struct HostReport {
    /// The campaign-level simulation report across all sessions,
    /// identical in structure to an offline run's.
    pub report: SimulationReport,
    /// Every admitted job in engine receipt order with its stamped
    /// submit time.
    pub trace: Vec<JobSpec>,
    /// The admission journal: replaying it offline
    /// ([`crate::Journal::replay`]) reproduces `report`'s schedule
    /// byte-identically.
    pub journal: Journal,
    /// Requests admitted into the engine.
    pub accepted: usize,
    /// Requests shed before the engine (duplicates, quota).
    pub rejected: usize,
    /// Placement responses delivered to sessions.
    pub served: usize,
    /// Sessions opened over the host's lifetime.
    pub sessions: usize,
    /// Per-tenant admission statistics.
    pub tenants: BTreeMap<TenantId, TenantReport>,
}

impl HostReport {
    /// FNV-1a digest of the committed schedule — the value the journal
    /// replay and the golden snapshots compare against.
    pub fn schedule_digest(&self) -> u64 {
        waterwise_cluster::schedule_digest(&self.report.outcomes)
    }
}

/// A long-lived multi-session placement server over one persistent
/// engine run. See the module docs for the thread topology.
///
/// ```
/// use waterwise_core::{build_scheduler, SchedulerKind, WaterWiseConfig};
/// use waterwise_service::{
///     AdmissionConfig, AdmissionMode, ClusterHost, HostConfig, ServiceConfig,
/// };
/// use waterwise_sustain::FootprintEstimator;
/// use waterwise_sustain::{KilowattHours, Seconds};
/// use waterwise_telemetry::Region;
/// use waterwise_traces::{Benchmark, JobId, JobSpec};
///
/// let config = HostConfig::new(ServiceConfig::small_demo(42)).with_admission(AdmissionConfig {
///     // Auto-close once both expected sessions end their streams, so
///     // the engine drains and `shutdown` can report.
///     mode: AdmissionMode::Streaming { close_after_sessions: Some(2) },
///     ..AdmissionConfig::default()
/// });
/// let service = waterwise_service::PlacementService::new(config.service.clone()).unwrap();
/// let scheduler = build_scheduler(
///     SchedulerKind::WaterWise,
///     service.telemetry(),
///     FootprintEstimator::new(config.service.simulation.datacenter),
///     &WaterWiseConfig::default(),
///     None,
/// );
/// let host = ClusterHost::start_with_service(service, config.admission, scheduler).unwrap();
///
/// let spec = |id: u64, t: f64| JobSpec {
///     id: JobId(id),
///     benchmark: Benchmark::Blackscholes,
///     submit_time: Seconds::new(t),
///     home_region: Region::Milan,
///     actual_execution_time: Seconds::new(300.0),
///     actual_energy: KilowattHours::new(0.02),
///     estimated_execution_time: Seconds::new(300.0),
///     estimated_energy: KilowattHours::new(0.02),
///     package_bytes: 1 << 20,
/// };
/// let a = host.open_session("acme").unwrap();
/// let b = host.open_session("umbrella").unwrap();
/// a.submit(spec(1, 0.0)).unwrap();
/// b.submit(spec(2, 0.0)).unwrap();
/// // End both streams first: the auto-close (and with it the final
/// // drain) fires when the last expected session ends.
/// a.finish();
/// b.finish();
/// let (a, b) = (a.drain(), b.drain());
/// assert_eq!((a.len(), b.len()), (1, 1));
/// let report = host.shutdown().unwrap();
/// assert_eq!(report.served, 2);
/// assert_eq!(report.journal.entries.len(), 2);
/// ```
pub struct ClusterHost {
    service: Arc<PlacementService>,
    admission: Arc<AdmissionQueue>,
    engine: JoinHandle<Result<OnlineReport, ServiceError>>,
    outbox_depth: usize,
}

impl ClusterHost {
    /// Build the service and start the host's engine run.
    pub fn start(config: HostConfig, scheduler: Box<dyn Scheduler>) -> Result<Self, ServiceError> {
        let service = PlacementService::new(config.service)?;
        Self::start_with_service(service, config.admission, scheduler)
    }

    /// Start the host over an already-built service (useful when the
    /// caller needs the service's telemetry to build the scheduler).
    pub fn start_with_service(
        service: PlacementService,
        admission: AdmissionConfig,
        scheduler: Box<dyn Scheduler>,
    ) -> Result<Self, ServiceError> {
        Self::start_inner(
            service,
            AdmissionQueue::new(admission),
            scheduler,
            Vec::new(),
        )
    }

    /// Start the host with durability: stream the admission journal to
    /// disk and/or resume from a recovered one.
    ///
    /// Resume re-feeds the recovered entries — same specs, same
    /// sequences, same order — as the **head** of the fresh engine run,
    /// before anything new drains. The engine orders work purely by
    /// `(time, sequence)` event keys, so the resumed run's combined
    /// schedule is byte-identical to a never-interrupted run over the same
    /// submissions (the `restart_identity` battery pins this). New
    /// sessions allocate sequence bands above every recovered band, the
    /// recovered stamps seed the watermark, and recovered job ids stay
    /// duplicate-rejected across the restart.
    ///
    /// Resuming requires a configuration that can reproduce the original
    /// event keys: streaming admission (a gated host's one-shot canonical
    /// batch cannot be re-opened) and the discrete clock (a real-time
    /// clock would re-stamp the recovered head with fresh wall-clock
    /// times). Anything else fails fast with
    /// [`ServiceError::ResumeUnsupported`].
    ///
    /// Recovered jobs were admitted by a previous process, so their
    /// placements have no live session to route to and are discarded at
    /// the router; the report's admission counters likewise cover this
    /// process's sessions only, while [`HostReport::journal`] and
    /// [`HostReport::trace`] span the combined run.
    pub fn start_persistent(
        service: PlacementService,
        admission: AdmissionConfig,
        scheduler: Box<dyn Scheduler>,
        persistence: HostPersistence,
    ) -> Result<Self, ServiceError> {
        let resume = persistence.resume.unwrap_or_default();
        if !resume.entries.is_empty() {
            if matches!(admission.mode, AdmissionMode::Gated { .. }) {
                return Err(ServiceError::ResumeUnsupported {
                    reason: "gated admission releases one canonical batch and closes; \
                             resuming requires streaming mode"
                        .into(),
                });
            }
            if service.config().clock != ClockMode::Discrete {
                return Err(ServiceError::ResumeUnsupported {
                    reason: "the real-time clock would re-stamp the recovered entries with \
                             fresh wall-clock arrivals; resuming requires the discrete clock"
                        .into(),
                });
            }
        }
        let sink = persistence
            .journal_path
            .as_deref()
            .map(JournalWriter::create)
            .transpose()?;
        let queue = AdmissionQueue::with_recovery(admission, &resume.entries, sink)?;
        let recovered = resume
            .entries
            .into_iter()
            .map(|entry| SequencedJob {
                spec: entry.spec,
                seq: entry.seq,
            })
            .collect();
        Self::start_inner(service, queue, scheduler, recovered)
    }

    /// Shared startup: spawn the engine thread with its feeder/router
    /// scope. `recovered` is fed to the engine before the admission queue
    /// drains anything new.
    fn start_inner(
        service: PlacementService,
        admission: AdmissionQueue,
        mut scheduler: Box<dyn Scheduler>,
        recovered: Vec<SequencedJob>,
    ) -> Result<Self, ServiceError> {
        let service = Arc::new(service);
        let admission = Arc::new(admission);
        let outbox_depth = service.config().notice_queue.max(1);
        let ingest_depth = service.config().ingest_queue.max(1);
        let clock = service.config().clock;
        let engine = std::thread::spawn({
            let service = service.clone();
            let admission = admission.clone();
            move || -> Result<OnlineReport, ServiceError> {
                let (job_tx, job_rx) = std::sync::mpsc::sync_channel(ingest_depth);
                let (notice_tx, notice_rx) =
                    std::sync::mpsc::sync_channel::<PlacementNotice>(outbox_depth);
                let result = std::thread::scope(|scope| {
                    let admission = &admission;
                    let service = &service;
                    let feeder = scope.spawn(move || {
                        // A resumed host replays the recovered journal as
                        // the head of the live stream: same specs, same
                        // sequences, same order as the interrupted run.
                        for job in recovered {
                            if job_tx.send(job).is_err() {
                                return;
                            }
                        }
                        while let Some(job) = admission.next_job() {
                            if job_tx.send(job).is_err() {
                                // The engine bailed; its error is the story.
                                break;
                            }
                        }
                    });
                    let router = scope.spawn(move || {
                        for notice in notice_rx.iter() {
                            let Some(route) = admission.route(notice.job) else {
                                continue;
                            };
                            let response = service.enrich(notice, &route.spec);
                            // A dead session's responses are discarded;
                            // the host stays healthy.
                            let sent = match route.sink {
                                Some(sink) => sink.send(response).is_ok(),
                                None => false,
                            };
                            admission.delivered(&route.tenant, route.session, sent);
                        }
                    });
                    let report = service.simulator().run_online_sequenced(
                        scheduler.as_mut(),
                        job_rx,
                        notice_tx,
                        clock,
                    );
                    // On an engine failure the feeder may still be blocked
                    // in the admission queue: close it (without releasing
                    // a pending gate) so the feeder exits. On the normal
                    // path admission is already closed and drained.
                    if report.is_err() {
                        admission.hang_up_sessions();
                    }
                    join_or_resume(feeder);
                    join_or_resume(router);
                    report
                });
                // No further responses can ever flow: unblock every
                // session still draining its outbox.
                admission.hang_up_sessions();
                result.map_err(ServiceError::from)
            }
        });
        Ok(Self {
            service,
            admission,
            engine,
            outbox_depth,
        })
    }

    /// The persistent service backing the host (telemetry, estimator,
    /// configuration).
    pub fn service(&self) -> &PlacementService {
        &self.service
    }

    /// Open a session under `tenant` (the default tenant of its
    /// submissions). Sessions are cheap; open one per connection or per
    /// logical request stream.
    pub fn open_session(&self, tenant: impl Into<TenantId>) -> Result<HostSession, ServiceError> {
        let (sink, responses) = std::sync::mpsc::sync_channel(self.outbox_depth);
        let id = self.admission.open_session(sink)?;
        Ok(HostSession {
            admission: self.admission.clone(),
            id,
            tenant: tenant.into(),
            responses: Mutex::new(Some(responses)),
            finished: AtomicBool::new(false),
        })
    }

    /// Stop admitting, drain the engine, and report the whole campaign.
    /// Blocks until every admitted job has completed. Safe to call while
    /// sessions are still open: their queued requests drain, their
    /// outboxes close after their last response.
    pub fn shutdown(self) -> Result<HostReport, ServiceError> {
        self.admission.close();
        let report = join_owned_or_resume(self.engine)?;
        let (mut journal, accepted, rejected, served, tenants) = self.admission.take_report_parts();
        // Under the real-time clock the engine stamps arrivals itself at
        // ingestion; backfill the journal from the trace (both are in
        // engine receipt order) so a replay re-derives the same event
        // keys. Under the discrete clock this is a no-op: the admission
        // watermark mirrors the engine's stamp floor exactly.
        for (entry, stamped) in journal.entries.iter_mut().zip(&report.trace) {
            if entry.spec.id == stamped.id {
                entry.spec.submit_time = stamped.submit_time;
            }
        }
        Ok(HostReport {
            report: report.report,
            trace: report.trace,
            journal,
            accepted,
            rejected,
            served,
            sessions: self.admission.sessions_opened(),
            tenants,
        })
    }
}

/// One request stream multiplexed onto a [`ClusterHost`]. Submissions
/// are admitted under the session's default tenant (or any explicit
/// tenant via [`HostSession::submit_as`]); responses arrive on the
/// session's own bounded outbox in placement-commit order.
///
/// Dropping the session ends its stream (as does [`HostSession::finish`]
/// or [`HostSession::drain`]); on an auto-closing or gated host the last
/// stream end is what lets the engine drain and the host report.
pub struct HostSession {
    admission: Arc<AdmissionQueue>,
    id: usize,
    tenant: TenantId,
    /// The outbox receiver, handed out once (`Receiver` is not `Sync`, so
    /// a shared session cannot expose it by reference).
    responses: Mutex<Option<Receiver<PlacementResponse>>>,
    finished: AtomicBool,
}

impl HostSession {
    /// The session's default tenant.
    pub fn tenant(&self) -> &TenantId {
        &self.tenant
    }

    /// Submit a request under the session's default tenant. Fails fast
    /// with [`ServiceError::AdmissionRejected`] /
    /// [`ServiceError::DuplicateRequest`] without consuming the request's
    /// quota slot.
    pub fn submit(&self, spec: JobSpec) -> Result<(), ServiceError> {
        self.admission.submit(self.id, &self.tenant, spec)
    }

    /// Submit a request under an explicit tenant (the TCP front-end's
    /// per-request `tenant` field).
    pub fn submit_as(&self, tenant: &TenantId, spec: JobSpec) -> Result<(), ServiceError> {
        self.admission.submit(self.id, tenant, spec)
    }

    /// Take the session's response outbox (available exactly once —
    /// `None` thereafter). Responses keep arriving after
    /// [`HostSession::finish`] until every admitted request is answered,
    /// then the channel closes. Dropping the receiver discards undelivered
    /// responses without disturbing the host.
    pub fn take_responses(&self) -> Option<Receiver<PlacementResponse>> {
        lock_clean(&self.responses).take()
    }

    /// End the session's request stream (idempotent). Outstanding
    /// requests still complete and arrive on the outbox.
    pub fn finish(&self) {
        if !self.finished.swap(true, Ordering::AcqRel) {
            self.admission.end_session(self.id);
        }
    }

    /// End the stream and collect every remaining response. Blocks until
    /// the session's last admitted job completes — which, under the
    /// discrete clock, requires other sessions (or an auto-close) to
    /// advance simulated time past the session's jobs.
    pub fn drain(self) -> Vec<PlacementResponse> {
        self.finish();
        match self.take_responses() {
            Some(responses) => responses.iter().collect(),
            None => Vec::new(),
        }
    }

    /// The session died without finishing cleanly (TCP writer failure):
    /// drop its outbox so pending deliveries are discarded instead of
    /// blocking.
    pub(crate) fn abandon(&self) {
        self.admission.mark_session_dead(self.id);
        self.finish();
    }
}

impl Drop for HostSession {
    fn drop(&mut self) {
        self.finish();
    }
}
