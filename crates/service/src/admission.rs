//! Multi-tenant admission control for the persistent cluster host.
//!
//! Every session thread of a [`crate::ClusterHost`] funnels its requests
//! through one shared admission queue. Admission is where the
//! multi-tenant policy lives:
//!
//! - **Per-tenant in-flight quotas.** A tenant may hold at most
//!   [`AdmissionConfig::tenant_inflight_quota`] requests that are queued or
//!   awaiting placement; excess submissions are shed *at submit* with a
//!   typed [`ServiceError::AdmissionRejected`] (reported in-band on TCP),
//!   so no tenant can monopolize the engine or starve the queue.
//! - **Deficit-round-robin drain.** Admitted requests drain into the
//!   engine tenant-by-tenant, [`AdmissionConfig::drr_quantum`] requests
//!   per visit, so a flooding tenant interleaves fairly with light ones.
//! - **Deterministic sequencing.** Each drained request carries an arrival
//!   sequence from its session's band (`session << 32 | request index`),
//!   so exact-timestamp tie order in the engine is a pure function of
//!   `(session, request index)` — independent of which session's thread
//!   happened to reach the queue first. Submit-time stamps are
//!   monotonized against the host watermark in drain order, mirroring the
//!   engine's own discrete-clock floor.
//! - **Journaling.** Every drained request is appended to the admission
//!   journal ([`crate::Journal`]) with its sequence and tenant; replaying
//!   the journal offline reproduces the byte-identical schedule.
//!
//! [`AdmissionMode::Gated`] trades liveness for full run-level
//! determinism: nothing drains until every expected session has ended its
//! stream, then the whole batch is released in a canonical order
//! (`(submit_time, tenant, id)`) with sequences `0, 1, 2, …` — the shape
//! the `server_multi` golden snapshot pins over live TCP, where even
//! session start order is a race.

use crate::error::ServiceError;
use crate::journal::{Journal, JournalEntry, JournalWriter};
use crate::request::PlacementResponse;
use crate::sync::{lock_clean, wait_clean};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::sync::mpsc::SyncSender;
use std::sync::{Condvar, Mutex};
use waterwise_cluster::SequencedJob;
use waterwise_sustain::Seconds;
use waterwise_traces::{JobId, JobSpec};

/// The name a multi-session host admits and quota-accounts a request
/// under. Tenants are created on first use; requests without a wire
/// `tenant` field fall to their session's default tenant.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct TenantId(String);

impl TenantId {
    /// Wrap a tenant name.
    pub fn new(name: impl Into<String>) -> Self {
        Self(name.into())
    }

    /// The tenant's name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for TenantId {
    fn from(name: &str) -> Self {
        Self(name.to_string())
    }
}

impl From<String> for TenantId {
    fn from(name: String) -> Self {
        Self(name)
    }
}

/// When admitted requests drain into the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionMode {
    /// Drain continuously (deficit round-robin) while sessions stream.
    /// Exact-tie order is deterministic (session bands); everything else
    /// about the live schedule is pinned by the admission journal, which
    /// replays offline to the byte-identical schedule.
    Streaming {
        /// Automatically stop admitting — and let the engine drain and the
        /// host report — once this many sessions have opened *and* every
        /// one of them has ended its stream. `None` keeps the host alive
        /// until [`crate::ClusterHost::shutdown`].
        close_after_sessions: Option<usize>,
    },
    /// Hold every request until all `sessions` expected sessions have
    /// ended their streams, then release the whole batch in canonical
    /// `(submit_time, tenant, id)` order with sequences `0, 1, 2, …` and
    /// close. The live schedule is then a pure function of the submitted
    /// *set* — no race, not even session start order, can perturb it —
    /// which is what lets a golden snapshot pin a concurrent TCP run.
    /// This is also the maximal-batching shape: one MILP round sees every
    /// tenant's jobs at once.
    Gated {
        /// Sessions the gate waits for.
        sessions: usize,
    },
}

impl Default for AdmissionMode {
    fn default() -> Self {
        AdmissionMode::Streaming {
            close_after_sessions: None,
        }
    }
}

/// Fairness and batching knobs of the multi-tenant host.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Max requests one tenant may have queued or awaiting placement;
    /// submissions beyond it are shed with
    /// [`ServiceError::AdmissionRejected`].
    pub tenant_inflight_quota: usize,
    /// Requests drained per tenant per deficit-round-robin visit.
    pub drr_quantum: usize,
    /// When admitted requests drain into the engine.
    pub mode: AdmissionMode,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            tenant_inflight_quota: 64,
            drr_quantum: 8,
            mode: AdmissionMode::default(),
        }
    }
}

/// Sessions are dense indices into the admission state's session table —
/// also the high half of the per-session arrival-sequence band.
pub(crate) type SessionId = usize;

/// Hard cap on sessions per host run: the arrival band is
/// `session << 32 | request`, and `2^16 * 2^32` is the whole low band
/// ([`ONLINE_ARRIVAL_SEQ_LIMIT`] = 2^48).
const MAX_SESSIONS: usize = 1 << 16;
/// Requests per session before its band half overflows.
const MAX_SESSION_REQUESTS: u64 = 1 << 32;

/// One submitted-but-not-yet-drained request.
#[derive(Debug)]
struct QueuedRequest {
    band_seq: u64,
    spec: JobSpec,
}

/// Per-tenant accounting.
#[derive(Debug, Default)]
struct TenantState {
    queue: VecDeque<QueuedRequest>,
    /// Drained into the engine, placement not yet delivered.
    in_flight: usize,
    /// Remaining deficit of the current DRR visit.
    deficit: usize,
    /// Whether the tenant is in the DRR active list.
    in_active: bool,
    accepted: usize,
    rejected: usize,
    served: usize,
}

/// Per-session bookkeeping.
#[derive(Debug)]
struct SessionState {
    /// The session's bounded response outbox; dropped (closing the
    /// session's writer) once the stream has ended and every outstanding
    /// request is answered — or immediately when the session dies.
    sink: Option<SyncSender<PlacementResponse>>,
    /// Admitted requests not yet answered or dropped.
    outstanding: usize,
    /// Requests submitted so far (the band half of the next sequence).
    submitted: u64,
    /// The stream ended (EOF / `finish`); no further submissions.
    ended: bool,
}

/// Where a placement notice routes back to.
pub(crate) struct DeliveryRoute {
    pub(crate) tenant: TenantId,
    pub(crate) session: SessionId,
    pub(crate) spec: JobSpec,
    pub(crate) sink: Option<SyncSender<PlacementResponse>>,
}

/// Final per-tenant admission statistics, reported by
/// [`crate::HostReport::tenants`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantReport {
    /// Requests admitted into the engine.
    pub accepted: usize,
    /// Requests shed (duplicates, quota).
    pub rejected: usize,
    /// Placement responses delivered.
    pub served: usize,
}

#[derive(Default)]
struct AdmissionState {
    tenants: BTreeMap<TenantId, TenantState>,
    /// DRR rotation of tenants with non-empty queues.
    active: VecDeque<TenantId>,
    sessions: Vec<SessionState>,
    /// First session id of *this* host run. A resumed host starts its
    /// bands above every band the recovered journal used, so re-fed
    /// recovered jobs and new submissions can never collide on a
    /// sequence. Public session ids are `session_base + index` into
    /// `sessions`; zero for a fresh host.
    session_base: usize,
    /// Sessions whose stream has not ended yet.
    sessions_open: usize,
    /// Pending placements by job id (also carries the spec for response
    /// enrichment).
    routes: BTreeMap<JobId, (TenantId, SessionId, JobSpec)>,
    /// Every id ever admitted — host-wide duplicate detection (the
    /// engine's own id table spans the whole persistent run).
    seen_ids: BTreeSet<JobId>,
    /// Largest submit-time stamp drained so far (the discrete watermark).
    watermark: f64,
    /// Gated mode: the canonically-ordered batch, once released.
    release: VecDeque<SequencedJob>,
    gate_released: bool,
    /// No further sessions or submissions (shutdown, auto-close, or an
    /// engine failure).
    closed: bool,
    journal: Vec<JournalEntry>,
    /// Streams every journal entry to disk as it is recorded (under this
    /// lock, so the file order is exactly the drain order). Dropped on a
    /// write failure: durability degrades, the host does not die mid-run.
    sink: Option<JournalWriter>,
    accepted: usize,
    rejected: usize,
    served: usize,
}

impl AdmissionState {
    /// Translate a public session id into its `sessions` index; `None`
    /// for ids below the resume base or never opened.
    fn slot(&self, session: SessionId) -> Option<usize> {
        session.checked_sub(self.session_base)
    }
}

/// The shared admission queue of one [`crate::ClusterHost`]. All methods
/// are `&self` and thread-safe; session threads submit, the host's feeder
/// thread drains, the host's router thread delivers.
pub(crate) struct AdmissionQueue {
    config: AdmissionConfig,
    state: Mutex<AdmissionState>,
    /// Signals the feeder (work queued, gate released, closed) — and
    /// anything waiting on session lifecycle edges.
    ready: Condvar,
}

impl AdmissionQueue {
    pub(crate) fn new(config: AdmissionConfig) -> Self {
        Self {
            config,
            state: Mutex::new(AdmissionState {
                watermark: f64::NEG_INFINITY,
                ..AdmissionState::default()
            }),
            ready: Condvar::new(),
        }
    }

    /// Build a queue resuming from a recovered journal: the recovered
    /// entries become the journal prefix, their job ids are pre-seen
    /// (host-wide duplicate detection spans the restart), the watermark
    /// continues from the last recovered stamp, and new sessions allocate
    /// sequence bands strictly above every recovered band. When a disk
    /// sink is given, the recovered prefix is rewritten through it first —
    /// repairing any torn tail the crash left — then new entries stream
    /// as they drain.
    pub(crate) fn with_recovery(
        config: AdmissionConfig,
        recovered: &[JournalEntry],
        mut sink: Option<JournalWriter>,
    ) -> Result<Self, ServiceError> {
        let mut session_base = 0usize;
        let mut watermark = f64::NEG_INFINITY;
        let mut seen_ids = BTreeSet::new();
        for entry in recovered {
            session_base = session_base.max((entry.seq >> 32) as usize + 1);
            watermark = watermark.max(entry.spec.submit_time.value());
            seen_ids.insert(entry.spec.id);
        }
        if let Some(writer) = sink.as_mut() {
            for entry in recovered {
                writer.append(entry)?;
            }
            writer.sync()?;
        }
        Ok(Self {
            config,
            state: Mutex::new(AdmissionState {
                watermark,
                session_base,
                seen_ids,
                journal: recovered.to_vec(),
                sink,
                ..AdmissionState::default()
            }),
            ready: Condvar::new(),
        })
    }

    /// Open a session, registering its response outbox. Fails once the
    /// host is closed, the expected session count was reached, or the
    /// session band space is exhausted.
    pub(crate) fn open_session(
        &self,
        sink: SyncSender<PlacementResponse>,
    ) -> Result<SessionId, ServiceError> {
        let mut state = lock_clean(&self.state);
        if state.closed {
            return Err(ServiceError::ServiceStopped);
        }
        let opened = state.sessions.len();
        let expected = match self.config.mode {
            AdmissionMode::Gated { sessions } => Some(sessions),
            AdmissionMode::Streaming {
                close_after_sessions,
            } => close_after_sessions,
        };
        // The band space bounds *public* ids (base + index): a resumed
        // host inherits however much of the band its ancestors used.
        if state.session_base + opened >= MAX_SESSIONS || expected.is_some_and(|n| opened >= n) {
            return Err(ServiceError::SessionLimit { sessions: opened });
        }
        state.sessions.push(SessionState {
            sink: Some(sink),
            outstanding: 0,
            submitted: 0,
            ended: false,
        });
        state.sessions_open += 1;
        Ok(state.session_base + opened)
    }

    /// Submit one request under `tenant`. Fail-fast (never blocks): quota
    /// and duplicate rejections come back as typed errors the session
    /// reports in-band, and the request is gone.
    pub(crate) fn submit(
        &self,
        session: SessionId,
        tenant: &TenantId,
        spec: JobSpec,
    ) -> Result<(), ServiceError> {
        validate_spec(&spec)?;
        let mut state = lock_clean(&self.state);
        if state.closed {
            return Err(ServiceError::ServiceStopped);
        }
        let slot = state.slot(session);
        match slot.and_then(|slot| state.sessions.get(slot)) {
            None => return Err(ServiceError::ServiceStopped),
            Some(s) if s.ended => return Err(ServiceError::ServiceStopped),
            Some(s) if s.submitted >= MAX_SESSION_REQUESTS => {
                return Err(ServiceError::SessionLimit { sessions: session })
            }
            Some(_) => {}
        }
        // Checked non-None just above; the unwrap-free fallback cannot
        // fire (DET003).
        let slot = slot.unwrap_or(0);
        if state.seen_ids.contains(&spec.id) {
            state.rejected += 1;
            if let Some(t) = state.tenants.get_mut(tenant) {
                t.rejected += 1;
            }
            return Err(ServiceError::DuplicateRequest { id: spec.id });
        }
        let quota = self.config.tenant_inflight_quota.max(1);
        let tenant_state = state.tenants.entry(tenant.clone()).or_default();
        let in_flight = tenant_state.queue.len() + tenant_state.in_flight;
        if in_flight >= quota {
            tenant_state.rejected += 1;
            state.rejected += 1;
            return Err(ServiceError::AdmissionRejected {
                tenant: tenant.as_str().to_string(),
                in_flight,
                quota,
            });
        }
        tenant_state.accepted += 1;
        if !tenant_state.in_active {
            tenant_state.in_active = true;
            state.active.push_back(tenant.clone());
        }
        state.accepted += 1;
        state.seen_ids.insert(spec.id);
        state
            .routes
            .insert(spec.id, (tenant.clone(), session, spec.clone()));
        let k = state.sessions[slot].submitted;
        state.sessions[slot].submitted = k + 1;
        state.sessions[slot].outstanding += 1;
        // The band's high half is the *public* id, so bands stay unique
        // across a resume chain.
        let band_seq = ((session as u64) << 32) | k;
        if let Some(tenant_state) = state.tenants.get_mut(tenant) {
            tenant_state
                .queue
                .push_back(QueuedRequest { band_seq, spec });
        }
        self.ready.notify_all();
        Ok(())
    }

    /// The session's request stream ended (EOF, `finish`, disconnect).
    /// Idempotent. May release the gate or auto-close the host.
    pub(crate) fn end_session(&self, session: SessionId) {
        let mut state = lock_clean(&self.state);
        let Some(s) = state
            .slot(session)
            .and_then(|slot| state.sessions.get_mut(slot))
        else {
            return;
        };
        if s.ended {
            return;
        }
        s.ended = true;
        if s.outstanding == 0 {
            s.sink = None;
        }
        state.sessions_open -= 1;
        let opened = state.sessions.len();
        let all_ended = state.sessions_open == 0;
        match self.config.mode {
            AdmissionMode::Gated { sessions } => {
                if all_ended && opened >= sessions && !state.gate_released {
                    release_gate(&mut state);
                }
            }
            AdmissionMode::Streaming {
                close_after_sessions: Some(sessions),
            } => {
                if all_ended && opened >= sessions {
                    state.closed = true;
                }
            }
            AdmissionMode::Streaming {
                close_after_sessions: None,
            } => {}
        }
        self.ready.notify_all();
    }

    /// A session died without being answered (its writer failed): drop its
    /// outbox so nothing blocks on it again. Its already-admitted jobs
    /// still run (the engine cannot un-admit them); their responses are
    /// discarded at delivery.
    pub(crate) fn mark_session_dead(&self, session: SessionId) {
        let mut state = lock_clean(&self.state);
        if let Some(s) = state
            .slot(session)
            .and_then(|slot| state.sessions.get_mut(slot))
        {
            s.sink = None;
        }
    }

    /// Close admission: no new sessions or submissions. Queued requests
    /// still drain (a gated host releases whatever is queued), so the
    /// engine can finish and report.
    pub(crate) fn close(&self) {
        let mut state = lock_clean(&self.state);
        if let AdmissionMode::Gated { .. } = self.config.mode {
            if !state.gate_released {
                release_gate(&mut state);
            }
        }
        state.closed = true;
        self.ready.notify_all();
    }

    /// Drop every session outbox (the engine ended — with a report or an
    /// error — so no further responses can come).
    pub(crate) fn hang_up_sessions(&self) {
        let mut state = lock_clean(&self.state);
        state.closed = true;
        for session in &mut state.sessions {
            session.sink = None;
        }
        self.ready.notify_all();
    }

    /// Block until the next request is ready to enter the engine; `None`
    /// when admission is closed and everything queued has drained — the
    /// engine's end-of-source. Called by the host's feeder thread.
    ///
    /// This is where the deficit-round-robin policy and the watermark
    /// stamping run, and where the journal entry is written: the journal
    /// records exactly the `(spec, seq)` stream the engine sees, in the
    /// order it sees it.
    pub(crate) fn next_job(&self) -> Option<SequencedJob> {
        let quantum = self.config.drr_quantum.max(1);
        let mut state = lock_clean(&self.state);
        loop {
            if let AdmissionMode::Gated { .. } = self.config.mode {
                if state.gate_released {
                    return state.release.pop_front();
                }
                // Closed without a release: the engine died before the
                // gate; nothing will ever drain.
                if state.closed {
                    return None;
                }
            } else {
                if let Some(job) = drr_pop(&mut state, quantum) {
                    return Some(job);
                }
                if state.closed {
                    return None;
                }
            }
            state = wait_clean(&self.ready, state);
        }
    }

    /// Look up where `job`'s placement routes back to. `None` for unknown
    /// jobs (already delivered, or never admitted). The route is consumed.
    pub(crate) fn route(&self, job: JobId) -> Option<DeliveryRoute> {
        let mut state = lock_clean(&self.state);
        let (tenant, session, spec) = state.routes.remove(&job)?;
        let sink = state
            .slot(session)
            .and_then(|slot| state.sessions.get(slot))
            .and_then(|s| s.sink.as_ref().cloned());
        Some(DeliveryRoute {
            tenant,
            session,
            spec,
            sink,
        })
    }

    /// Account a delivery attempt: frees the tenant's quota slot and the
    /// session's outstanding slot; `sent` is whether the response reached
    /// the session (a dead session's responses are discarded, which must
    /// not poison the host). Closes the session's outbox once its stream
    /// has ended and nothing is outstanding.
    pub(crate) fn delivered(&self, tenant: &TenantId, session: SessionId, sent: bool) {
        let mut state = lock_clean(&self.state);
        if let Some(t) = state.tenants.get_mut(tenant) {
            t.in_flight = t.in_flight.saturating_sub(1);
            if sent {
                t.served += 1;
            }
        }
        if sent {
            state.served += 1;
        }
        if let Some(s) = state
            .slot(session)
            .and_then(|slot| state.sessions.get_mut(slot))
        {
            s.outstanding = s.outstanding.saturating_sub(1);
            if !sent {
                // The session cannot receive responses anymore.
                s.sink = None;
            }
            if s.ended && s.outstanding == 0 {
                s.sink = None;
            }
        }
        self.ready.notify_all();
    }

    /// Sessions opened over the host's lifetime.
    pub(crate) fn sessions_opened(&self) -> usize {
        lock_clean(&self.state).sessions.len()
    }

    /// Consume the admission bookkeeping into the host report's
    /// ingredients: the journal (entries in drain order) and the
    /// counters. Called once at shutdown, after the engine has returned.
    pub(crate) fn take_report_parts(
        &self,
    ) -> (
        Journal,
        usize,
        usize,
        usize,
        BTreeMap<TenantId, TenantReport>,
    ) {
        let mut state = lock_clean(&self.state);
        if let Some(writer) = state.sink.as_mut() {
            // Final flush of the on-disk journal; best-effort, as the
            // in-memory journal below is the authoritative report.
            let _ = writer.sync();
        }
        let journal = Journal {
            entries: std::mem::take(&mut state.journal),
        };
        let tenants = state
            .tenants
            .iter()
            .map(|(tenant, t)| {
                (
                    tenant.clone(),
                    TenantReport {
                        accepted: t.accepted,
                        rejected: t.rejected,
                        served: t.served,
                    },
                )
            })
            .collect();
        (
            journal,
            state.accepted,
            state.rejected,
            state.served,
            tenants,
        )
    }
}

/// In-process submissions bypass the wire grammar, so re-check here what
/// the wire codec enforces: a non-finite or negative numeric would kill
/// the whole persistent engine run instead of failing one request.
fn validate_spec(spec: &JobSpec) -> Result<(), ServiceError> {
    let checks = [
        ("submit_time", spec.submit_time.value()),
        ("actual_execution_time", spec.actual_execution_time.value()),
        (
            "estimated_execution_time",
            spec.estimated_execution_time.value(),
        ),
        ("actual_energy", spec.actual_energy.value()),
        ("estimated_energy", spec.estimated_energy.value()),
    ];
    for (key, value) in checks {
        if !value.is_finite() || value < 0.0 {
            return Err(ServiceError::MalformedRequest {
                line: 0,
                message: format!("{key} must be finite and non-negative, got {value}"),
            });
        }
    }
    Ok(())
}

/// Pop the next request under deficit round-robin, stamping and
/// journaling it. Runs under the state lock.
fn drr_pop(state: &mut AdmissionState, quantum: usize) -> Option<SequencedJob> {
    loop {
        let tenant = state.active.front()?.clone();
        let Some(t) = state.tenants.get_mut(&tenant) else {
            state.active.pop_front();
            continue;
        };
        if t.queue.is_empty() {
            t.in_active = false;
            t.deficit = 0;
            state.active.pop_front();
            continue;
        }
        if t.deficit == 0 {
            t.deficit = quantum;
        }
        let Some(request) = t.queue.pop_front() else {
            continue;
        };
        t.deficit -= 1;
        t.in_flight += 1;
        if t.deficit == 0 || t.queue.is_empty() {
            // End of visit: rotate to the back while work remains.
            let more = !t.queue.is_empty();
            t.deficit = 0;
            t.in_active = more;
            state.active.pop_front();
            if more {
                state.active.push_back(tenant.clone());
            }
        }
        return Some(stamp_and_journal(
            state,
            tenant,
            request.spec,
            request.band_seq,
        ));
    }
}

/// Monotonize the request's submit time against the host watermark (the
/// exact mirror of the engine's discrete stamp floor, so a drained
/// request can never be rejected as out-of-order) and record the journal
/// entry. Under [`waterwise_cluster::ClockMode::RealTime`] the engine
/// re-stamps on ingestion; the journaled stamp is backfilled from the
/// engine trace at shutdown.
fn stamp_and_journal(
    state: &mut AdmissionState,
    tenant: TenantId,
    mut spec: JobSpec,
    seq: u64,
) -> SequencedJob {
    let stamp = spec.submit_time.value().max(state.watermark);
    state.watermark = stamp;
    spec.submit_time = Seconds::new(stamp);
    let entry = JournalEntry {
        seq,
        tenant,
        spec: spec.clone(),
    };
    if let Some(writer) = state.sink.as_mut() {
        if writer.append(&entry).is_err() {
            // Journal durability degrades to in-memory only; failing the
            // whole live run over a disk hiccup would be worse. The
            // in-memory journal (and the shutdown report) stay complete.
            state.sink = None;
        }
    }
    state.journal.push(entry);
    SequencedJob { spec, seq }
}

/// Gated release: order the whole batch canonically by
/// `(submit_time, tenant, id)` — every key independent of submission
/// races — and assign contiguous sequences in that order. Runs under the
/// state lock; also closes admission (the gate is one-shot).
fn release_gate(state: &mut AdmissionState) {
    let mut batch: Vec<(TenantId, QueuedRequest)> = Vec::new();
    let tenants: Vec<TenantId> = state.tenants.keys().cloned().collect();
    for tenant in tenants {
        if let Some(t) = state.tenants.get_mut(&tenant) {
            t.in_active = false;
            t.deficit = 0;
            while let Some(request) = t.queue.pop_front() {
                t.in_flight += 1;
                batch.push((tenant.clone(), request));
            }
        }
    }
    state.active.clear();
    batch.sort_by(|(ta, a), (tb, b)| {
        a.spec
            .submit_time
            .value()
            .total_cmp(&b.spec.submit_time.value())
            .then_with(|| ta.cmp(tb))
            .then_with(|| a.spec.id.cmp(&b.spec.id))
    });
    for (seq, (tenant, request)) in batch.into_iter().enumerate() {
        let job = stamp_and_journal(state, tenant, request.spec, seq as u64);
        state.release.push_back(job);
    }
    state.gate_released = true;
    state.closed = true;
}

#[cfg(test)]
mod tests {
    use super::*;
    use waterwise_cluster::ONLINE_ARRIVAL_SEQ_LIMIT;
    use waterwise_sustain::KilowattHours;
    use waterwise_telemetry::Region;
    use waterwise_traces::Benchmark;

    fn spec(id: u64, submit: f64) -> JobSpec {
        JobSpec {
            id: JobId(id),
            benchmark: Benchmark::Dedup,
            submit_time: Seconds::new(submit),
            home_region: Region::Oregon,
            actual_execution_time: Seconds::new(60.0),
            actual_energy: KilowattHours::new(0.01),
            estimated_execution_time: Seconds::new(60.0),
            estimated_energy: KilowattHours::new(0.01),
            package_bytes: 1,
        }
    }

    fn sink() -> SyncSender<PlacementResponse> {
        // The receiver is dropped: admission never sends on sinks itself.
        std::sync::mpsc::sync_channel(1).0
    }

    #[test]
    fn drr_interleaves_a_flooding_tenant_with_a_light_one() {
        let queue = AdmissionQueue::new(AdmissionConfig {
            tenant_inflight_quota: 1000,
            drr_quantum: 2,
            mode: AdmissionMode::default(),
        });
        let s = queue.open_session(sink()).unwrap();
        let flood = TenantId::from("flood");
        let light = TenantId::from("light");
        for id in 0..6 {
            queue.submit(s, &flood, spec(id, 0.0)).unwrap();
        }
        for id in 100..102 {
            queue.submit(s, &light, spec(id, 0.0)).unwrap();
        }
        queue.close();
        let mut order = Vec::new();
        while let Some(job) = queue.next_job() {
            order.push(job.spec.id.0);
        }
        // Quantum 2: two flood, then light gets its visit, not starved
        // behind all six flood requests.
        assert_eq!(order, vec![0, 1, 100, 101, 2, 3, 4, 5]);
    }

    #[test]
    fn quota_sheds_with_a_typed_error_and_frees_on_delivery() {
        let queue = AdmissionQueue::new(AdmissionConfig {
            tenant_inflight_quota: 2,
            drr_quantum: 8,
            mode: AdmissionMode::default(),
        });
        let s = queue.open_session(sink()).unwrap();
        let tenant = TenantId::from("t");
        queue.submit(s, &tenant, spec(1, 0.0)).unwrap();
        queue.submit(s, &tenant, spec(2, 0.0)).unwrap();
        match queue.submit(s, &tenant, spec(3, 0.0)) {
            Err(ServiceError::AdmissionRejected {
                tenant: name,
                in_flight: 2,
                quota: 2,
            }) => assert_eq!(name, "t"),
            other => panic!("expected AdmissionRejected, got {other:?}"),
        }
        // Drain one into the engine and deliver it: the quota slot frees.
        let job = queue.next_job().unwrap();
        assert!(queue.route(job.spec.id).is_some());
        queue.delivered(&tenant, s, true);
        queue.submit(s, &tenant, spec(3, 0.0)).unwrap();
        let (journal, accepted, rejected, served, tenants) = queue.take_report_parts();
        assert_eq!(journal.entries.len(), 1);
        assert_eq!((accepted, rejected, served), (3, 1, 1));
        assert_eq!(tenants[&tenant].rejected, 1);
    }

    #[test]
    fn duplicates_are_rejected_host_wide_even_after_delivery() {
        let queue = AdmissionQueue::new(AdmissionConfig::default());
        let s = queue.open_session(sink()).unwrap();
        let tenant = TenantId::from("t");
        queue.submit(s, &tenant, spec(7, 0.0)).unwrap();
        let job = queue.next_job().unwrap();
        assert!(queue.route(job.spec.id).is_some());
        queue.delivered(&tenant, s, true);
        assert!(matches!(
            queue.submit(s, &tenant, spec(7, 1.0)),
            Err(ServiceError::DuplicateRequest { id: JobId(7) })
        ));
    }

    #[test]
    fn band_sequences_encode_session_and_request_index() {
        let queue = AdmissionQueue::new(AdmissionConfig::default());
        let s0 = queue.open_session(sink()).unwrap();
        let s1 = queue.open_session(sink()).unwrap();
        let tenant = TenantId::from("t");
        queue.submit(s0, &tenant, spec(1, 0.0)).unwrap();
        queue.submit(s1, &tenant, spec(2, 0.0)).unwrap();
        queue.submit(s1, &tenant, spec(3, 0.0)).unwrap();
        queue.close();
        let mut seqs = BTreeMap::new();
        while let Some(job) = queue.next_job() {
            seqs.insert(job.spec.id.0, job.seq);
        }
        assert_eq!(seqs[&1], 0);
        assert_eq!(seqs[&2], 1 << 32);
        assert_eq!(seqs[&3], (1 << 32) | 1);
        assert!(seqs.values().all(|&s| s < ONLINE_ARRIVAL_SEQ_LIMIT));
    }

    #[test]
    fn gated_release_orders_canonically_and_stamps_monotonically() {
        let queue = AdmissionQueue::new(AdmissionConfig {
            tenant_inflight_quota: 64,
            drr_quantum: 8,
            mode: AdmissionMode::Gated { sessions: 2 },
        });
        let s0 = queue.open_session(sink()).unwrap();
        let s1 = queue.open_session(sink()).unwrap();
        let a = TenantId::from("a");
        let b = TenantId::from("b");
        // Interleaved submission order deliberately disagrees with the
        // canonical (time, tenant, id) order.
        queue.submit(s1, &b, spec(10, 30.0)).unwrap();
        queue.submit(s0, &a, spec(11, 30.0)).unwrap();
        queue.submit(s1, &a, spec(12, 0.0)).unwrap();
        queue.submit(s0, &b, spec(13, 60.0)).unwrap();
        // Nothing drains before the gate.
        queue.end_session(s0);
        queue.end_session(s1);
        let mut order = Vec::new();
        let mut stamps = Vec::new();
        while let Some(job) = queue.next_job() {
            order.push(job.spec.id.0);
            stamps.push(job.spec.submit_time.value());
            assert_eq!(job.seq, (order.len() - 1) as u64);
        }
        assert_eq!(order, vec![12, 11, 10, 13]);
        assert!(stamps.windows(2).all(|w| w[0] <= w[1]));
        // The gate is one-shot: admission closed behind it.
        assert!(matches!(
            queue.submit(s0, &a, spec(99, 99.0)),
            Err(ServiceError::ServiceStopped)
        ));
    }

    #[test]
    fn session_limits_and_non_finite_specs_are_typed_errors() {
        let queue = AdmissionQueue::new(AdmissionConfig {
            mode: AdmissionMode::Streaming {
                close_after_sessions: Some(1),
            },
            ..AdmissionConfig::default()
        });
        let s = queue.open_session(sink()).unwrap();
        assert!(matches!(
            queue.open_session(sink()),
            Err(ServiceError::SessionLimit { sessions: 1 })
        ));
        let mut bad = spec(1, 0.0);
        bad.submit_time = Seconds::new(f64::NAN);
        assert!(matches!(
            queue.submit(s, &TenantId::from("t"), bad),
            Err(ServiceError::MalformedRequest { .. })
        ));
        // Ending the only expected session auto-closes the host.
        queue.end_session(s);
        assert!(queue.next_job().is_none());
        assert!(matches!(
            queue.submit(s, &TenantId::from("t"), spec(2, 0.0)),
            Err(ServiceError::ServiceStopped)
        ));
    }
}
