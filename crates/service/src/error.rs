//! Typed errors of the online placement service.

use std::fmt;
use std::path::PathBuf;
use waterwise_cluster::{ConfigError, SimulationError};
use waterwise_core::CachePersistError;
use waterwise_traces::JobId;

/// Everything that can go wrong while serving placement requests.
///
/// The service distinguishes *per-request* failures (a malformed line, a
/// duplicate id), which are reported back to the client and do not stop the
/// service, from *run-level* failures (the engine rejecting the stream, a
/// dead response sink, transport I/O), which terminate
/// [`crate::PlacementService::serve`] with one of these variants.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The simulation configuration backing the service is invalid.
    Config(ConfigError),
    /// The engine failed while replaying the live stream (duplicate ids
    /// that slipped past validation, out-of-order discrete arrivals, a dead
    /// pipeline stage, …).
    Simulation(SimulationError),
    /// A transport-level I/O failure (TCP accept/read/write). The inner
    /// string is the I/O error's message (`std::io::Error` is not `Clone`,
    /// so the service stores its rendering).
    Io(String),
    /// A request line could not be parsed into a [`crate::PlacementRequest`].
    /// The TCP front-end reports this back to the client on the connection
    /// and keeps serving; it only becomes a run-level error for sources
    /// that cannot continue past garbage.
    MalformedRequest {
        /// 1-based line number on the connection (0 for non-line sources).
        line: usize,
        /// What was wrong with it.
        message: String,
    },
    /// A request reused the id of an earlier request in the same session.
    /// The request is dropped (and reported back to the client where the
    /// transport allows) before it can poison the engine.
    DuplicateRequest {
        /// The reused id.
        id: JobId,
    },
    /// The caller dropped the response receiver while placements were still
    /// being made; the service shuts down instead of silently discarding
    /// answers.
    ResponseSinkClosed,
    /// The service already stopped accepting requests (the engine ended or
    /// failed), so a [`crate::RequestSender::submit`] had no receiver.
    ServiceStopped,
    /// A tenant hit its bounded in-flight quota on the multi-session host:
    /// the request was shed *before* the admission queue instead of letting
    /// one tenant monopolize the engine. Reported in-band (TCP clients see
    /// an `{"type":"error","code":"admission_rejected",...}` line); the
    /// session keeps going and the tenant can resubmit once placements
    /// drain its in-flight window.
    AdmissionRejected {
        /// The tenant that hit its quota.
        tenant: String,
        /// Requests the tenant had queued or awaiting placement.
        in_flight: usize,
        /// The configured per-tenant quota.
        quota: usize,
    },
    /// The multi-session host ran out of session capacity: either the
    /// configured session count was reached (gated/auto-closing hosts) or
    /// the per-session sequence band space (2^16 sessions per host run)
    /// was exhausted.
    SessionLimit {
        /// Sessions the host had already opened.
        sessions: usize,
    },
    /// An admission journal line could not be parsed back into an entry.
    JournalMalformed {
        /// 1-based line number in the journal text.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
    /// The on-disk admission journal could not be read or written.
    JournalIo {
        /// The journal file.
        path: PathBuf,
        /// Stringified OS error.
        message: String,
    },
    /// A solution-cache snapshot failed to save or load (see the inner
    /// error for which gate — header, checksum, solver config — rejected
    /// it and which file it names).
    CachePersist(CachePersistError),
    /// The host was asked to resume from a recovered journal under a
    /// configuration that cannot reproduce the original schedule.
    ResumeUnsupported {
        /// Which configuration requirement was violated.
        reason: String,
    },
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Config(e) => write!(f, "invalid service config: {e}"),
            ServiceError::Simulation(e) => write!(f, "engine failure: {e}"),
            ServiceError::Io(message) => write!(f, "transport i/o failure: {message}"),
            ServiceError::MalformedRequest { line, message } => {
                write!(f, "malformed request on line {line}: {message}")
            }
            ServiceError::DuplicateRequest { id } => {
                write!(f, "duplicate request id {id} in this session")
            }
            ServiceError::ResponseSinkClosed => {
                write!(f, "response sink hung up while placements were pending")
            }
            ServiceError::ServiceStopped => {
                write!(f, "the placement service is no longer accepting requests")
            }
            ServiceError::AdmissionRejected {
                tenant,
                in_flight,
                quota,
            } => {
                write!(
                    f,
                    "tenant {tenant:?} is at its in-flight quota ({in_flight}/{quota}); \
                     retry after placements drain"
                )
            }
            ServiceError::SessionLimit { sessions } => {
                write!(
                    f,
                    "the host is not accepting new sessions ({sessions} already opened)"
                )
            }
            ServiceError::JournalMalformed { line, message } => {
                write!(f, "malformed journal entry on line {line}: {message}")
            }
            ServiceError::JournalIo { path, message } => {
                write!(f, "journal i/o failure at {}: {message}", path.display())
            }
            ServiceError::CachePersist(e) => write!(f, "cache persistence failure: {e}"),
            ServiceError::ResumeUnsupported { reason } => {
                write!(f, "cannot resume from a recovered journal: {reason}")
            }
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Config(e) => Some(e),
            ServiceError::Simulation(e) => Some(e),
            ServiceError::CachePersist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CachePersistError> for ServiceError {
    fn from(e: CachePersistError) -> Self {
        ServiceError::CachePersist(e)
    }
}

impl From<ConfigError> for ServiceError {
    fn from(e: ConfigError) -> Self {
        ServiceError::Config(e)
    }
}

impl From<SimulationError> for ServiceError {
    fn from(e: SimulationError) -> Self {
        ServiceError::Simulation(e)
    }
}

impl From<std::io::Error> for ServiceError {
    fn from(e: std::io::Error) -> Self {
        ServiceError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure() {
        assert!(ServiceError::DuplicateRequest { id: JobId(9) }
            .to_string()
            .contains("job-9"));
        assert!(ServiceError::MalformedRequest {
            line: 3,
            message: "missing id".into(),
        }
        .to_string()
        .contains("line 3"));
        assert!(ServiceError::ResponseSinkClosed
            .to_string()
            .contains("sink"));
        let io: ServiceError = std::io::Error::new(std::io::ErrorKind::BrokenPipe, "gone").into();
        assert!(io.to_string().contains("gone"));
    }

    #[test]
    fn sources_are_preserved_for_wrapped_errors() {
        use std::error::Error;
        let e = ServiceError::from(ConfigError::NoRegions);
        assert!(e.source().is_some());
        let e = ServiceError::from(SimulationError::DuplicateJobId { id: JobId(1) });
        assert!(e.source().is_some());
        assert!(ServiceError::ServiceStopped.source().is_none());
    }
}
