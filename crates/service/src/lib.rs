//! # waterwise-service
//!
//! The online placement front-end of the WaterWise reproduction: live
//! request ingestion into the (optionally pipelined) simulation engine.
//!
//! The batch crates replay a whole trace and report a campaign summary;
//! this crate turns the same engine into a *servable system*. Clients
//! submit placement requests over a [`RequestSource`] — an in-process
//! bounded channel ([`channel_source`]) or a line-delimited-JSON TCP
//! connection ([`TcpPlacementServer`]) — and receive a
//! [`PlacementResponse`] per job as the scheduler commits it: the chosen
//! region, the scheduling slot, the projected carbon/water footprint of
//! the decision, and whether the placement still meets its delay-tolerance
//! deadline.
//!
//! Every queue in the path is bounded, so backpressure is end-to-end: a
//! slow scheduler fills the ingestion channel, which blocks the request
//! source, which (on TCP) stops reading the socket.
//!
//! ## Multi-tenant hosting
//!
//! [`ClusterHost`] promotes the one-session service into a long-lived
//! multi-session server: one persistent engine run (warm solution cache,
//! warm solver workspace) multiplexing many concurrent sessions through a
//! shared admission queue with per-tenant in-flight quotas
//! ([`ServiceError::AdmissionRejected`] in-band when exceeded) and
//! deficit-round-robin fairness. [`TcpClusterServer`] serves concurrent
//! TCP clients against one host; requests may carry a `tenant` wire
//! field. Every admitted request is journaled ([`Journal`]) with its
//! arrival sequence.
//!
//! ## Determinism
//!
//! The service preserves the workspace's byte-identity discipline: an
//! online session records its admitted jobs as a trace
//! ([`ServiceReport::trace`]), and replaying that trace offline through
//! [`waterwise_cluster::Simulator::run`] reproduces the exact same
//! schedule — under either engine mode and either
//! [`waterwise_cluster::ClockMode`]. The property test
//! `tests/online_equivalence.rs` enforces this, and the `fig17_service`
//! benchmark re-asserts it over the TCP path. Multi-session runs extend
//! the discipline: tie order is pinned by per-session sequence bands, and
//! replaying the admission journal offline ([`Journal::replay`])
//! reproduces the live schedule byte-identically regardless of how the
//! session threads interleaved (`tests/multi_session_equivalence.rs`).
//! See `docs/ONLINE_SERVICE.md` for the operator-facing picture (wire
//! format, tenancy, clock modes, shutdown).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod admission;
pub mod error;
pub mod host;
pub mod journal;
pub mod request;
pub mod service;
pub mod source;
mod sync;
pub mod tcp;
pub mod wire;

pub use admission::{AdmissionConfig, AdmissionMode, TenantId, TenantReport};
pub use error::ServiceError;
pub use host::{ClusterHost, HostConfig, HostPersistence, HostReport, HostSession};
pub use journal::{Journal, JournalEntry, JournalWriter, ReplayOutcome};
pub use request::{PlacementRequest, PlacementResponse};
pub use service::{PlacementService, ServiceConfig, ServiceReport};
pub use source::{channel_source, ChannelSource, RequestSender, RequestSource};
pub use tcp::{TcpClusterServer, TcpPlacementServer};
