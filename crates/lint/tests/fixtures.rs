//! Fixture battery for the determinism lint: every DET rule has at least
//! one positive and one negative fixture, the waiver grammar edge cases
//! (missing reason, unknown rule id, stale waiver) are findings in their
//! own right, and every diagnostic is pinned to its exact `path:line`.
//!
//! The fixtures live under `tests/fixtures/` — a directory the workspace
//! walker deliberately skips, so the seeded violations never pollute the
//! real `waterwise-lint --deny` run that CI enforces.

use std::path::{Path, PathBuf};
use waterwise_lint::{lint_paths, lint_workspace, Report, ScopeMode};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Lint a single fixture with every rule in scope (fixtures live outside
/// the real crate paths, so the workspace scoping would mask them).
fn lint_fixture(name: &str) -> Report {
    lint_paths(&fixture_root(), &[name.to_string()], ScopeMode::Everywhere)
        .expect("fixture file reads")
}

/// Active (unwaived) findings rendered in the `path:line: CODE message`
/// diagnostic shape, in report order.
fn active_lines(report: &Report) -> Vec<String> {
    report.active().map(|f| f.render()).collect()
}

/// Assert each active finding against its exact `path:line: CODE` anchor.
fn assert_anchors(report: &Report, expected: &[&str]) {
    let lines = active_lines(report);
    assert_eq!(
        lines.len(),
        expected.len(),
        "finding count mismatch: {lines:#?}"
    );
    for (line, anchor) in lines.iter().zip(expected) {
        assert!(
            line.starts_with(anchor),
            "expected a finding anchored at `{anchor}`, got `{line}`"
        );
    }
}

#[test]
fn det001_catches_hash_iteration_at_exact_lines() {
    let report = lint_fixture("det001_hash_iteration.rs");
    assert_anchors(
        &report,
        &[
            "det001_hash_iteration.rs:4: DET001 ",
            "det001_hash_iteration.rs:5: DET001 ",
        ],
    );
    let lines = active_lines(&report);
    assert!(lines[0].contains("`HashMap`"), "{}", lines[0]);
    assert!(lines[1].contains("`HashSet`"), "{}", lines[1]);
}

#[test]
fn det001_passes_ordered_containers() {
    assert_anchors(&lint_fixture("det001_btree_clean.rs"), &[]);
}

#[test]
fn det002_catches_wall_clock_reads_at_exact_lines() {
    let report = lint_fixture("det002_wall_clock.rs");
    assert_anchors(
        &report,
        &[
            "det002_wall_clock.rs:4: DET002 ",
            "det002_wall_clock.rs:5: DET002 ",
        ],
    );
    let lines = active_lines(&report);
    assert!(lines[0].contains("`Instant::now()`"), "{}", lines[0]);
    assert!(lines[1].contains("`SystemTime::now()`"), "{}", lines[1]);
}

#[test]
fn det002_accepts_a_reasoned_waiver() {
    let report = lint_fixture("det002_waived.rs");
    assert_anchors(&report, &[]);
    assert_eq!(report.waived_count(), 1);
    let waived: Vec<_> = report
        .findings
        .iter()
        .filter_map(|f| f.waived.as_deref())
        .collect();
    assert_eq!(
        waived,
        ["prepare timing capture; scrubbed by without_wall_clock"]
    );
}

#[test]
fn det003_catches_every_panicking_operator_at_exact_lines() {
    let report = lint_fixture("det003_panics.rs");
    assert_anchors(
        &report,
        &[
            "det003_panics.rs:4: DET003 ",
            "det003_panics.rs:5: DET003 ",
            "det003_panics.rs:7: DET003 ",
            "det003_panics.rs:9: DET003 ",
        ],
    );
    let lines = active_lines(&report);
    assert!(lines[0].contains("`.unwrap()`"), "{}", lines[0]);
    assert!(lines[1].contains("`.expect()`"), "{}", lines[1]);
    assert!(lines[2].contains("`panic!`"), "{}", lines[2]);
    assert!(lines[3].contains("`unreachable!`"), "{}", lines[3]);
}

#[test]
fn det003_passes_typed_error_handling() {
    assert_anchors(&lint_fixture("det003_typed_errors.rs"), &[]);
}

#[test]
fn det004_catches_parallelism_and_thread_identity_at_exact_lines() {
    let report = lint_fixture("det004_parallelism.rs");
    assert_anchors(
        &report,
        &[
            "det004_parallelism.rs:4: DET004 ",
            "det004_parallelism.rs:8: DET004 ",
        ],
    );
    let lines = active_lines(&report);
    assert!(
        lines[0].contains("`available_parallelism()`"),
        "{}",
        lines[0]
    );
    assert!(
        lines[1].contains("`thread::current().id()`"),
        "{}",
        lines[1]
    );
}

#[test]
fn det004_passes_a_threaded_through_worker_count() {
    assert_anchors(&lint_fixture("det004_cached.rs"), &[]);
}

#[test]
fn det005_catches_float_equality_at_exact_lines() {
    let report = lint_fixture("det005_float_eq.rs");
    assert_anchors(
        &report,
        &[
            "det005_float_eq.rs:4: DET005 ",
            "det005_float_eq.rs:4: DET005 ",
        ],
    );
    let lines = active_lines(&report);
    assert!(lines[0].contains("float `==`"), "{}", lines[0]);
    assert!(lines[1].contains("float `!=`"), "{}", lines[1]);
}

#[test]
fn det005_passes_total_cmp() {
    assert_anchors(&lint_fixture("det005_total_cmp.rs"), &[]);
}

#[test]
fn waiver_without_a_reason_is_itself_an_error() {
    // Both spellings — no colon at all, and a colon with nothing after it —
    // fail WVR001, and the finding they tried to cover stays active.
    let report = lint_fixture("waiver_missing_reason.rs");
    assert_anchors(
        &report,
        &[
            "waiver_missing_reason.rs:4: WVR001 ",
            "waiver_missing_reason.rs:5: DET003 ",
            "waiver_missing_reason.rs:9: WVR001 ",
            "waiver_missing_reason.rs:10: DET003 ",
        ],
    );
    let lines = active_lines(&report);
    assert!(lines[0].contains("no reason"), "{}", lines[0]);
}

#[test]
fn waiver_naming_an_unknown_rule_is_itself_an_error() {
    let report = lint_fixture("waiver_unknown_rule.rs");
    assert_anchors(
        &report,
        &[
            "waiver_unknown_rule.rs:4: WVR002 ",
            "waiver_unknown_rule.rs:5: DET003 ",
        ],
    );
    let lines = active_lines(&report);
    assert!(lines[0].contains("`DET999`"), "{}", lines[0]);
}

#[test]
fn stale_waiver_is_itself_an_error() {
    let report = lint_fixture("waiver_stale.rs");
    assert_anchors(&report, &["waiver_stale.rs:4: WVR003 "]);
    let lines = active_lines(&report);
    assert!(lines[0].contains("stale waiver"), "{}", lines[0]);
}

#[test]
fn test_code_is_masked_entirely() {
    let report = lint_fixture("test_code_masked.rs");
    assert_anchors(&report, &[]);
    assert_eq!(report.findings.len(), 0, "test code must produce nothing");
}

/// The acceptance gate itself, as a test: the real workspace lints clean,
/// and every waiver that suppresses a finding carries a reason.
#[test]
fn workspace_lints_clean_with_reasoned_waivers() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
        .to_path_buf();
    let report = lint_workspace(&root).expect("workspace lints");
    let active: Vec<String> = active_lines(&report);
    assert!(
        active.is_empty(),
        "unwaived findings:\n{}",
        active.join("\n")
    );
    for finding in &report.findings {
        let reason = finding.waived.as_deref().unwrap_or_default();
        assert!(
            !reason.trim().is_empty(),
            "waived finding without a reason: {}",
            finding.render()
        );
    }
}
