//! DET002 positive: raw wall-clock reads with no scrub-site waiver.

fn stamp() -> (std::time::Instant, std::time::SystemTime) {
    let started = std::time::Instant::now();
    let stamped = std::time::SystemTime::now();
    (started, stamped)
}
