//! DET001 positive: hash-ordered containers in schedule-affecting code.

fn carried_assignments() {
    let carried = std::collections::HashMap::<u64, u32>::new();
    let mut seen = std::collections::HashSet::<u64>::new();
    for (job, region) in &carried {
        seen.insert(*job + u64::from(*region));
    }
}
