//! DET002 negative: a scrubbed timing capture carries its waiver.

fn timed() -> f64 {
    // lint:allow(DET002: prepare timing capture; scrubbed by without_wall_clock)
    let started = std::time::Instant::now();
    started.elapsed().as_secs_f64()
}
