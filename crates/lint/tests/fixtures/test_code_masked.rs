//! Test-mask fixture: panicking asserts are fine inside test code.

pub fn double(x: u32) -> u32 {
    x * 2
}

#[cfg(test)]
mod tests {
    #[test]
    fn doubles() {
        let m = std::collections::HashMap::<u32, u32>::new();
        assert_eq!(m.get(&1).copied().unwrap_or(super::double(1)), 2);
        Vec::<u32>::new().pop().unwrap();
    }
}
