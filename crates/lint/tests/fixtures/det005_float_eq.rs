//! DET005 positive: float equality in accounting code.

fn settled(remaining: f64, epsilon: f64) -> bool {
    remaining == 0.0 || epsilon != 1.0e-9
}
