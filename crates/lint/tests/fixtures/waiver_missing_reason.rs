//! WVR001 fixture: waivers that fail to justify themselves.

fn noisy(queue: &mut Vec<u32>) -> u32 {
    // lint:allow(DET003)
    queue.pop().unwrap()
}

fn louder(queue: &mut Vec<u32>) -> u32 {
    // lint:allow(DET003:)
    queue.pop().unwrap()
}
