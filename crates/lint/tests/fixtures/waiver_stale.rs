//! WVR003 fixture: a waiver that outlived its violation.

fn quiet(queue: &mut Vec<u32>) -> Option<u32> {
    // lint:allow(DET003: the queue is checked non-empty by the caller)
    queue.pop()
}
