//! DET005 negative: ordered comparison instead of float equality.

fn settled(remaining: f64) -> bool {
    remaining.total_cmp(&0.0) == std::cmp::Ordering::Equal
}
