//! DET001 negative: ordered containers iterate deterministically.

fn carried_assignments() {
    let carried = std::collections::BTreeMap::<u64, u32>::new();
    let mut seen = std::collections::BTreeSet::<u64>::new();
    for (job, region) in &carried {
        seen.insert(*job + u64::from(*region));
    }
}
