//! DET003 negative: typed errors instead of panics.

fn drain(queue: &mut Vec<u32>) -> Result<u32, String> {
    let Some(head) = queue.pop() else {
        return Err("empty queue".to_string());
    };
    Ok(head)
}
