//! WVR002 fixture: a waiver naming a rule that does not exist.

fn noisy(queue: &mut Vec<u32>) -> u32 {
    // lint:allow(DET999: trust me)
    queue.pop().unwrap()
}
