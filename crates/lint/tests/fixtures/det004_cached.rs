//! DET004 negative: the worker count is decided once and threaded through.

fn shard(workers: usize, tasks: usize) -> usize {
    tasks.div_ceil(workers.max(1))
}
