//! DET003 positive: panicking operators in engine code.

fn drain(queue: &mut Vec<u32>) -> u32 {
    let head = queue.pop().unwrap();
    let next = queue.last().expect("non-empty");
    if head > *next {
        panic!("inverted order");
    }
    unreachable!("drain never falls through");
}
