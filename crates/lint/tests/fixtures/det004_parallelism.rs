//! DET004 positive: per-call parallelism and thread-identity reads.

fn workers() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn shard_by_thread() -> bool {
    format!("{:?}", std::thread::current().id()).len() % 2 == 0
}
