//! `waterwise-lint` — a determinism & hot-path static-analysis pass that
//! enforces the byte-identity discipline at the source level.
//!
//! Every PR since the seed stakes its correctness claim on byte-identical
//! schedules (serial==parallel, warm==cold, sync==pipelined,
//! online==offline, snapshot==replay), but until now those invariants were
//! enforced only *dynamically* — by proptests and in-bench asserts that run
//! after a nondeterminism bug has already been written. This crate moves
//! the discipline to the source: a hand-rolled Rust lexer (no registry
//! dependencies, in the same spirit as the scenario spec parser and the
//! bench JSON writer) feeds a small rule engine with five named rules:
//!
//! | rule | guards against |
//! |------|----------------|
//! | DET001 | hash-ordered iteration (`HashMap`/`HashSet`) in schedule-affecting crates |
//! | DET002 | wall-clock reads outside `without_wall_clock`-scrubbed capture sites |
//! | DET003 | `unwrap`/`expect`/`panic!` in engine/scheduler/solver non-test code |
//! | DET004 | per-call `available_parallelism()` / thread-identity branching |
//! | DET005 | float `==`/`!=` in objective/accounting code |
//!
//! Real violations are either fixed or waived inline with
//! `// lint:allow(DET00N: reason)` — and a waiver without a reason, naming
//! an unknown rule, or covering a line where the rule no longer fires is
//! itself an error (WVR001–WVR003), so the waiver set can never rot.
//!
//! ```
//! use waterwise_lint::{check_file, ScopeMode};
//!
//! let findings = check_file(
//!     "crates/core/src/sched/example.rs",
//!     "fn f() { let m = std::collections::HashMap::<u32, u32>::new(); }",
//!     ScopeMode::Workspace,
//! );
//! assert_eq!(findings.len(), 1);
//! assert_eq!(findings[0].rule.code(), "DET001");
//! assert!(findings[0].render().starts_with("crates/core/src/sched/example.rs:1: DET001"));
//! ```

mod lexer;
mod rules;
mod walk;

pub use lexer::{lex, LexedFile, Token, TokenKind};
pub use rules::{check_file, Finding, RuleId, ScopeMode};
pub use walk::workspace_files;

use std::path::Path;
use waterwise_bench::json_string;

/// The outcome of linting a file set.
#[derive(Debug, Default)]
pub struct Report {
    /// Number of files scanned.
    pub files: usize,
    /// Every finding, waived ones included, sorted by (path, line, rule).
    pub findings: Vec<Finding>,
}

impl Report {
    /// Findings not covered by a waiver — the ones that fail `--deny`.
    pub fn active(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.waived.is_none())
    }

    /// Number of active (unwaived) findings.
    pub fn active_count(&self) -> usize {
        self.active().count()
    }

    /// Number of findings suppressed by a reasoned waiver.
    pub fn waived_count(&self) -> usize {
        self.findings.len() - self.active_count()
    }

    /// Serialize as machine-readable JSON, built with the workspace's
    /// existing hand-rolled writer ([`waterwise_bench::json_string`]);
    /// the report is the artifact the CI lint job archives.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"schema\":\"waterwise-lint/1\"");
        out.push_str(&format!(
            ",\"files_scanned\":{},\"active\":{},\"waived\":{},\"findings\":[",
            self.files,
            self.active_count(),
            self.waived_count()
        ));
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rule\":{},\"path\":{},\"line\":{},\"message\":{},\"waived\":{},\"reason\":{}}}",
                json_string(f.rule.code()),
                json_string(&f.path),
                f.line,
                json_string(&f.message),
                if f.waived.is_some() { "true" } else { "false" },
                json_string(f.waived.as_deref().unwrap_or("")),
            ));
        }
        out.push_str("]}\n");
        out
    }
}

/// Lint every workspace `.rs` file under `root` (see
/// [`workspace_files`] for what is scanned) with the real crate scopes.
pub fn lint_workspace(root: &Path) -> std::io::Result<Report> {
    lint_paths(root, &workspace_files(root)?, ScopeMode::Workspace)
}

/// Lint an explicit set of workspace-relative paths. The fixture battery
/// uses this with [`ScopeMode::Everywhere`] to exercise every rule on
/// files that live outside the real crate scopes.
pub fn lint_paths(root: &Path, rel_paths: &[String], mode: ScopeMode) -> std::io::Result<Report> {
    let mut report = Report::default();
    for rel in rel_paths {
        let src = std::fs::read_to_string(root.join(rel))?;
        report.findings.extend(check_file(rel, &src, mode));
        report.files += 1;
    }
    report
        .findings
        .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_report_is_valid_and_complete() {
        let dir = std::env::temp_dir().join("waterwise-lint-selftest");
        std::fs::create_dir_all(&dir).expect("create temp dir");
        std::fs::write(
            dir.join("offender.rs"),
            "fn f() { let m = HashMap::new(); } // lint:allow(DET001: demo reason)\n\
             fn g() { x.unwrap(); }\n",
        )
        .expect("write fixture");
        let report =
            lint_paths(&dir, &["offender.rs".into()], ScopeMode::Everywhere).expect("lint runs");
        assert_eq!(report.files, 1);
        assert_eq!(report.active_count(), 1);
        assert_eq!(report.waived_count(), 1);
        let json = report.to_json();
        assert!(json.starts_with("{\"schema\":\"waterwise-lint/1\""));
        assert!(json.contains("\"rule\":\"DET001\""));
        assert!(json.contains("\"reason\":\"demo reason\""));
        assert!(json.contains("\"rule\":\"DET003\""));
    }
}
