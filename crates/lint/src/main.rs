//! The `waterwise-lint` binary: walk the workspace's `.rs` files, enforce
//! the determinism rules, print `path:line: DET00N message` diagnostics,
//! and optionally emit the machine-readable JSON report CI archives.
//!
//! ```text
//! waterwise-lint [--deny] [--json PATH] [--root DIR] [--list-rules]
//! ```
//!
//! Exit codes: `0` clean (or findings present without `--deny`), `1` at
//! least one unwaived finding under `--deny`, `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;
use waterwise_lint::{lint_workspace, RuleId};

fn main() -> ExitCode {
    let mut deny = false;
    let mut json: Option<PathBuf> = None;
    let mut root = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--json" => match args.next() {
                Some(path) => json = Some(PathBuf::from(path)),
                None => return usage("--json requires a path"),
            },
            "--root" => match args.next() {
                Some(path) => root = PathBuf::from(path),
                None => return usage("--root requires a directory"),
            },
            "--list-rules" => {
                for rule in RuleId::DET_RULES {
                    println!("{}  {}", rule.code(), rule.describe());
                }
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let report = match lint_workspace(&root) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("waterwise-lint: cannot scan {}: {err}", root.display());
            return ExitCode::from(2);
        }
    };
    for finding in report.active() {
        println!("{}", finding.render());
    }
    let active = report.active_count();
    eprintln!(
        "waterwise-lint: {} files scanned, {} finding{} ({} waived with reasons)",
        report.files,
        active,
        if active == 1 { "" } else { "s" },
        report.waived_count()
    );
    if let Some(path) = json {
        if let Err(err) = std::fs::write(&path, report.to_json()) {
            eprintln!("waterwise-lint: cannot write {}: {err}", path.display());
            return ExitCode::from(2);
        }
        eprintln!("waterwise-lint: JSON report written to {}", path.display());
    }
    if deny && active > 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn usage(problem: &str) -> ExitCode {
    eprintln!(
        "waterwise-lint: {problem}\n\
         usage: waterwise-lint [--deny] [--json PATH] [--root DIR] [--list-rules]"
    );
    ExitCode::from(2)
}
