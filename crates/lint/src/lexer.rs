//! A lightweight Rust lexer — just enough tokenization for the determinism
//! rules, in the same hand-rolled spirit as the scenario spec parser and the
//! bench JSON writer.
//!
//! The lexer's job is to make the rule engine *precise about what is code*:
//! comments (line, doc, and nested block), string literals (plain, raw,
//! byte), char literals, and lifetimes are consumed here so that a
//! `HashMap` mentioned in a doc comment or an `unwrap()` inside a string
//! can never produce a finding. Line numbers are 1-based, matching the
//! `path:line:` diagnostic convention of [`ScenarioError`]-style rendering.
//!
//! [`ScenarioError`]: https://docs.rs/waterwise-core
//!
//! Waiver comments (`// lint:allow(DET002: reason)`) are collected during
//! lexing — they live in comments, which only the lexer sees.

/// What kind of token was lexed. Only the shapes the rules inspect are
/// distinguished; all remaining punctuation is a single [`TokenKind::Punct`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`HashMap`, `fn`, `unwrap`, ...).
    Ident(Box<str>),
    /// A floating-point literal (`1.0`, `2.5e-3`, `1.`, `7f64`).
    Float,
    /// An integer literal (`42`, `0xff`, `1_000`).
    Int,
    /// The two-character `==` operator.
    EqEq,
    /// The two-character `!=` operator.
    NotEq,
    /// Any other single punctuation character (`.`, `!`, `{`, `(`, `:`, ...).
    Punct(char),
}

/// A token with the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub line: u32,
}

impl Token {
    /// The identifier text, if this token is one.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(name) => Some(name),
            _ => None,
        }
    }

    /// Whether this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.ident() == Some(name)
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }
}

/// A comment containing `lint:allow`, reported with the line it sits on;
/// parsing the waiver grammar itself happens in the rule engine, where a
/// malformed waiver becomes a finding rather than a lex error.
#[derive(Debug, Clone)]
pub struct WaiverComment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// The comment text after the `//` / `/*` marker, trimmed.
    pub text: String,
}

/// The lexed view of one source file.
#[derive(Debug, Default)]
pub struct LexedFile {
    pub tokens: Vec<Token>,
    pub waivers: Vec<WaiverComment>,
}

/// Tokenize `src`. Never fails: unterminated strings/comments simply end
/// the token stream at end-of-file, which is the forgiving behavior a lint
/// (not a compiler) wants — rustc will reject the file anyway.
pub fn lex(src: &str) -> LexedFile {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: LexedFile::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: LexedFile,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, kind: TokenKind, line: u32) {
        self.out.tokens.push(Token { kind, line });
    }

    fn run(mut self) -> LexedFile {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => {
                    self.bump();
                    self.string_body();
                }
                '\'' => self.char_or_lifetime(),
                c if c.is_ascii_digit() => self.number(line),
                c if c.is_alphabetic() || c == '_' => self.ident_or_raw_string(line),
                '=' if self.peek(1) == Some('=') => {
                    self.bump();
                    self.bump();
                    self.push(TokenKind::EqEq, line);
                }
                '!' if self.peek(1) == Some('=') => {
                    self.bump();
                    self.bump();
                    self.push(TokenKind::NotEq, line);
                }
                c => {
                    self.bump();
                    self.push(TokenKind::Punct(c), line);
                }
            }
        }
        self.out
    }

    /// `// ...` to end of line. Doc comments (`///`, `//!`) are consumed
    /// too but never carry waivers — documentation *talking about* the
    /// waiver grammar must not enact it.
    fn line_comment(&mut self) {
        let line = self.line;
        let start = self.pos;
        let doc = matches!(self.peek(2), Some('/') | Some('!'));
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            self.bump();
        }
        if doc {
            return;
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        let text = text.trim_start_matches('/').trim().to_string();
        if text.contains("lint:allow") {
            self.out.waivers.push(WaiverComment { line, text });
        }
    }

    /// `/* ... */`, nested per Rust's rules. Block doc comments
    /// (`/**`, `/*!`) never carry waivers, mirroring the line-comment rule.
    fn block_comment(&mut self) {
        let line = self.line;
        let start = self.pos;
        let doc = matches!(self.peek(2), Some('*') | Some('!'));
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
        if doc {
            return;
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        if text.contains("lint:allow") {
            let text = text
                .trim_start_matches(['/', '*'])
                .trim_end_matches(['/', '*'])
                .trim()
                .to_string();
            self.out.waivers.push(WaiverComment { line, text });
        }
    }

    /// The body of a `"..."` string, opening quote already consumed.
    fn string_body(&mut self) {
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
    }

    /// `r"..."` / `r#"..."#` / `br##"..."##`: the prefix identifier has
    /// already been matched by the caller; `hashes` is the number of `#`
    /// between the prefix and the opening quote.
    fn raw_string_body(&mut self, hashes: usize) {
        while let Some(c) = self.bump() {
            if c == '"' {
                let mut matched = 0;
                while matched < hashes && self.peek(0) == Some('#') {
                    self.bump();
                    matched += 1;
                }
                if matched == hashes {
                    break;
                }
            }
        }
    }

    /// Distinguish `'a'` / `'\n'` (char literal) from `'a` (lifetime).
    /// A lifetime is a quote followed by an identifier that is *not*
    /// closed by another quote right after its first character.
    fn char_or_lifetime(&mut self) {
        self.bump(); // opening '
        match (self.peek(0), self.peek(1)) {
            (Some('\\'), _) => {
                // Escaped char literal: consume through the closing quote.
                self.bump();
                self.bump(); // the escaped character (b, n, ', \, x, u, ...)
                while let Some(c) = self.bump() {
                    if c == '\'' {
                        break;
                    }
                }
            }
            (Some(c), Some('\'')) if c != '\'' => {
                // Plain char literal 'x'.
                self.bump();
                self.bump();
            }
            (Some(c), _) if c.is_alphabetic() || c == '_' => {
                // Lifetime: consume the identifier, no closing quote.
                while let Some(c) = self.peek(0) {
                    if c.is_alphanumeric() || c == '_' {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            _ => {}
        }
    }

    /// A numeric literal. Floats are what DET005 cares about: a `.` with a
    /// digit (or end-of-literal) after it, an exponent, or an explicit
    /// `f32`/`f64` suffix. `1..n` ranges and tuple indices stay integers.
    fn number(&mut self, line: u32) {
        let mut is_float = false;
        if self.peek(0) == Some('0') && matches!(self.peek(1), Some('x') | Some('b') | Some('o')) {
            // Radix literal: never a float; consume prefix + digits.
            self.bump();
            self.bump();
            while let Some(c) = self.peek(0) {
                if c.is_ascii_hexdigit() || c == '_' {
                    self.bump();
                } else {
                    break;
                }
            }
        } else {
            self.digits();
            if self.peek(0) == Some('.') {
                let after = self.peek(1);
                let fractional = match after {
                    Some(c) if c.is_ascii_digit() => true,
                    // `1.` is a float; `1..n` is a range; `1.pow()` is a call.
                    Some('.') => false,
                    Some(c) if c.is_alphabetic() || c == '_' => false,
                    _ => true,
                };
                if fractional {
                    is_float = true;
                    self.bump();
                    self.digits();
                }
            }
            if matches!(self.peek(0), Some('e') | Some('E')) {
                let (sign, digit) = (self.peek(1), self.peek(2));
                let exponent = match sign {
                    Some(c) if c.is_ascii_digit() => true,
                    Some('+') | Some('-') => matches!(digit, Some(d) if d.is_ascii_digit()),
                    _ => false,
                };
                if exponent {
                    is_float = true;
                    self.bump();
                    if matches!(self.peek(0), Some('+') | Some('-')) {
                        self.bump();
                    }
                    self.digits();
                }
            }
        }
        // Type suffix (f64, u32, usize, ...) — an `f` suffix marks a float.
        let suffix_start = self.pos;
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                self.bump();
            } else {
                break;
            }
        }
        let suffix: String = self.chars[suffix_start..self.pos].iter().collect();
        if suffix == "f32" || suffix == "f64" {
            is_float = true;
        }
        self.push(
            if is_float {
                TokenKind::Float
            } else {
                TokenKind::Int
            },
            line,
        );
    }

    fn digits(&mut self) {
        while let Some(c) = self.peek(0) {
            if c.is_ascii_digit() || c == '_' {
                self.bump();
            } else {
                break;
            }
        }
    }

    /// An identifier — unless it is the prefix of a raw/byte string
    /// (`r"`, `r#"`, `b"`, `br#"`), which must be consumed as a string so
    /// its contents can't leak tokens.
    fn ident_or_raw_string(&mut self, line: u32) {
        let start = self.pos;
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                self.bump();
            } else {
                break;
            }
        }
        let name: String = self.chars[start..self.pos].iter().collect();
        if name == "r" || name == "b" || name == "br" {
            let mut hashes = 0usize;
            while self.peek(hashes) == Some('#') {
                hashes += 1;
            }
            if self.peek(hashes) == Some('"') {
                if name == "b" && hashes == 0 {
                    // Byte string b"..." uses plain escape rules.
                    self.bump();
                    self.string_body();
                } else {
                    for _ in 0..=hashes {
                        self.bump();
                    }
                    self.raw_string_body(hashes);
                }
                return;
            }
        }
        self.push(TokenKind::Ident(name.into_boxed_str()), line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn comments_and_strings_produce_no_tokens() {
        let src = r##"
            // HashMap in a line comment
            /// HashMap in a doc comment
            /* HashMap /* nested */ still comment */
            let s = "HashMap::new()";
            let r = r#"unwrap() "quoted" HashMap"#;
            let b = b"HashMap";
            let ok = real_ident;
        "##;
        assert_eq!(
            idents(src),
            vec![
                "let",
                "s",
                "let",
                "r",
                "let",
                "b",
                "let",
                "ok",
                "real_ident"
            ]
        );
    }

    #[test]
    fn float_literals_are_distinguished_from_ints_and_ranges() {
        let kinds: Vec<TokenKind> = lex("1.0 2 3e-4 0x1f 1..5 x.0 7f64 8u32")
            .tokens
            .into_iter()
            .map(|t| t.kind)
            .collect();
        use TokenKind::*;
        assert_eq!(
            kinds,
            vec![
                Float,
                Int,
                Float,
                Int,
                Int,
                Punct('.'),
                Punct('.'),
                Int,
                Ident("x".into()),
                Punct('.'),
                Int,
                Float,
                Int,
            ]
        );
    }

    #[test]
    fn eqeq_and_noteq_are_single_tokens_with_lines() {
        let toks = lex("a == b\nc != 1.0").tokens;
        assert_eq!(toks[1].kind, TokenKind::EqEq);
        assert_eq!(toks[1].line, 1);
        assert_eq!(toks[4].kind, TokenKind::NotEq);
        assert_eq!(toks[4].line, 2);
        assert_eq!(toks[5].kind, TokenKind::Float);
    }

    #[test]
    fn lifetimes_and_char_literals_do_not_swallow_code() {
        let src = "fn f<'a>(x: &'a str) { let c = 'z'; let n = '\\n'; after() }";
        assert!(idents(src).contains(&"after".to_string()));
    }

    #[test]
    fn waiver_comments_are_collected_with_lines() {
        let src = "let x = 1;\n// lint:allow(DET002: timing capture)\nlet y = 2;";
        let lexed = lex(src);
        assert_eq!(lexed.waivers.len(), 1);
        assert_eq!(lexed.waivers[0].line, 2);
        assert_eq!(lexed.waivers[0].text, "lint:allow(DET002: timing capture)");
    }

    #[test]
    fn doc_comments_never_carry_waivers() {
        let src = "/// lint:allow(DET001: doc mention)\n\
                   //! lint:allow(DET002: inner doc mention)\n\
                   /** lint:allow(DET003: block doc mention) */\n\
                   // lint:allow(DET004: a real waiver)\n";
        let lexed = lex(src);
        assert_eq!(lexed.waivers.len(), 1);
        assert_eq!(lexed.waivers[0].line, 4);
    }

    #[test]
    fn unterminated_string_ends_cleanly_at_eof() {
        let lexed = lex("let s = \"never closed");
        assert_eq!(lexed.tokens.len(), 3);
    }
}
