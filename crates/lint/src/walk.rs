//! Workspace file discovery: every `.rs` file that feeds the shipped
//! binaries, in a deterministic (sorted) order.
//!
//! Skipped subtrees:
//! - `target/`, `.git/` — build artifacts and VCS metadata;
//! - `crates/compat/` — vendored API stubs for external crates; their whole
//!   point is to mimic `criterion`/`rand` behavior (including wall-clock
//!   reads), not to feed schedules;
//! - `tests/`, `benches/`, `examples/` directories — test and harness code,
//!   where `unwrap()` is the correct idiom (in-file `#[cfg(test)]` modules
//!   are masked separately by the rule engine);
//! - `crates/lint/tests/fixtures/` — deliberately violating fixture files
//!   (covered by the `tests/` rule but called out because a lint that lints
//!   its own counterexamples would deadlock development);
//! - files named `tests.rs` — the workspace convention for an out-of-line
//!   `#[cfg(test)] mod tests;` (the gating attribute lives in the parent
//!   `mod.rs`, which a per-file pass cannot see).

use std::io;
use std::path::{Path, PathBuf};

const SKIP_DIRS: &[&str] = &[
    "target", ".git", "tests", "benches", "examples", "fixtures", "compat",
];

/// Collect workspace-relative paths (forward slashes) of every `.rs` file
/// under `root` that the lint should scan, sorted for deterministic output.
pub fn workspace_files(root: &Path) -> io::Result<Vec<String>> {
    let mut files = Vec::new();
    let mut stack = vec![PathBuf::new()];
    while let Some(rel_dir) = stack.pop() {
        let dir = root.join(&rel_dir);
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy().into_owned();
            let rel = if rel_dir.as_os_str().is_empty() {
                PathBuf::from(&name)
            } else {
                rel_dir.join(&name)
            };
            let kind = entry.file_type()?;
            if kind.is_dir() {
                if !SKIP_DIRS.contains(&name.as_str()) && !name.starts_with('.') {
                    stack.push(rel);
                }
            } else if kind.is_file() && name.ends_with(".rs") && name != "tests.rs" {
                files.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
    files.sort();
    Ok(files)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walks_this_workspace_and_skips_fixture_and_compat_trees() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let files = workspace_files(&root).expect("workspace is readable");
        assert!(files.iter().any(|f| f == "crates/lint/src/walk.rs"));
        assert!(files
            .iter()
            .any(|f| f == "crates/core/src/sched/waterwise.rs"));
        assert!(!files.iter().any(|f| f.contains("compat")));
        assert!(!files.iter().any(|f| f.contains("fixtures")));
        assert!(!files.iter().any(|f| f.contains("target/")));
        assert!(
            !files.iter().any(|f| f.ends_with("/tests.rs")),
            "out-of-line #[cfg(test)] test modules must be skipped"
        );
        assert!(!files.iter().any(|f| f.starts_with("examples/")));
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted, "walk order must be deterministic");
    }
}
