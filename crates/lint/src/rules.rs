//! The determinism rules (DET001–DET005), the waiver grammar
//! (`// lint:allow(DETNNN: reason)`), and the test-code mask that keeps
//! `#[cfg(test)]` modules and `#[test]` functions out of scope.
//!
//! Every rule guards a *runtime byte-identity invariant* that the test
//! battery enforces dynamically (serial==parallel, warm==cold,
//! sync==pipelined, online==offline, snapshot==replay); the lint moves the
//! enforcement to the source level, before a nondeterminism bug is ever
//! executed. See `docs/LINTING.md` for the rule table and
//! `ARCHITECTURE.md` for the invariant each rule maps to.

use crate::lexer::{lex, LexedFile, Token, TokenKind, WaiverComment};
use std::collections::BTreeSet;

/// A lint rule identifier. `DET` rules are determinism findings; `WVR`
/// rules police the waiver grammar itself (a waiver is a claim about the
/// code and must stay justified and alive).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// Order-sensitive iteration hazard: `HashMap`/`HashSet` in a
    /// schedule-affecting crate.
    Det001,
    /// Wall-clock read (`Instant::now`/`SystemTime::now`) outside a
    /// waived timing-capture site.
    Det002,
    /// `unwrap`/`expect`/`panic!` family in engine/scheduler/solver
    /// non-test code.
    Det003,
    /// Per-call `available_parallelism()` or thread-identity-dependent
    /// branching.
    Det004,
    /// Float `==`/`!=` comparison in objective/accounting code.
    Det005,
    /// Malformed waiver (unparseable, or missing the mandatory reason).
    Wvr001,
    /// Waiver naming an unknown rule id.
    Wvr002,
    /// Stale waiver: its rule produced no finding on the covered lines.
    Wvr003,
}

impl RuleId {
    /// The `DET00N`/`WVR00N` code rendered in diagnostics.
    pub fn code(self) -> &'static str {
        match self {
            RuleId::Det001 => "DET001",
            RuleId::Det002 => "DET002",
            RuleId::Det003 => "DET003",
            RuleId::Det004 => "DET004",
            RuleId::Det005 => "DET005",
            RuleId::Wvr001 => "WVR001",
            RuleId::Wvr002 => "WVR002",
            RuleId::Wvr003 => "WVR003",
        }
    }

    /// The waivable determinism rules, in code order. `WVR` rules are not
    /// waivable: they police the waiver grammar itself.
    pub const DET_RULES: [RuleId; 5] = [
        RuleId::Det001,
        RuleId::Det002,
        RuleId::Det003,
        RuleId::Det004,
        RuleId::Det005,
    ];

    /// One-line description for `--list-rules` and the docs.
    pub fn describe(self) -> &'static str {
        match self {
            RuleId::Det001 => {
                "order-sensitive iteration: HashMap/HashSet in schedule-affecting code \
                 (use BTreeMap/BTreeSet or sort before iterating)"
            }
            RuleId::Det002 => {
                "wall-clock read (Instant::now/SystemTime::now) outside a waived \
                 timing-capture site scrubbed by without_wall_clock"
            }
            RuleId::Det003 => {
                "unwrap/expect/panic! in engine/scheduler/solver non-test code \
                 (use typed errors or waive with the documented invariant)"
            }
            RuleId::Det004 => {
                "per-call available_parallelism()/thread-identity branching \
                 (cache in a OnceLock; never branch on thread ids)"
            }
            RuleId::Det005 => {
                "float ==/!= comparison in objective/accounting code \
                 (use total_cmp or an explicit epsilon)"
            }
            RuleId::Wvr001 => "waiver is malformed or missing its mandatory reason",
            RuleId::Wvr002 => "waiver names an unknown rule id",
            RuleId::Wvr003 => "stale waiver: its rule no longer fires on the covered lines",
        }
    }

    fn from_code(code: &str) -> Option<RuleId> {
        Self::DET_RULES.iter().copied().find(|r| r.code() == code)
    }
}

/// Where each rule looks. [`ScopeMode::Workspace`] encodes the real
/// WaterWise crate layout; [`ScopeMode::Everywhere`] applies every rule to
/// every scanned file and exists for the fixture battery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScopeMode {
    Workspace,
    Everywhere,
}

/// Crates whose iteration order / panics can reach a schedule: the solver,
/// the simulation engine, and the scheduler implementations.
const SCHEDULE_AFFECTING: &[&str] = &[
    "crates/core/src/",
    "crates/cluster/src/",
    "crates/milp/src/",
];

/// Crates that must stay panic-free (DET003): the schedule-affecting set
/// plus the serving layer — a panic in the multi-session host poisons
/// shared admission state and takes every tenant's session down with it.
/// Unordered-map iteration (DET001) stays out of scope for the service:
/// its maps are response/routing plumbing whose order never reaches a
/// schedule (the engine orders by `(time, seq)` event keys alone).
const PANIC_FREE: &[&str] = &[
    "crates/core/src/",
    "crates/cluster/src/",
    "crates/milp/src/",
    "crates/service/src/",
];

/// Everything that executes between a request and a committed placement;
/// bench drivers (which *measure* wall time) and the vendored compat stubs
/// are deliberately outside.
const WALL_CLOCK_SCOPE: &[&str] = &[
    "crates/core/src/",
    "crates/cluster/src/",
    "crates/milp/src/",
    "crates/service/src/",
    "crates/sustain/src/",
    "crates/telemetry/src/",
    "crates/traces/src/",
    "src/",
];

/// Objective/accounting code: footprint math, objective assembly, the
/// scheduler's numerics, and the engine's accounting. The simplex kernel is
/// excluded on purpose — exact `== 0.0` sparsity tests are its correct
/// idiom.
const FLOAT_EQ_SCOPE: &[&str] = &[
    "crates/sustain/src/",
    "crates/core/src/objective.rs",
    "crates/core/src/sched/",
    "crates/cluster/src/state.rs",
    "crates/cluster/src/engine/",
];

fn in_scope(prefixes: &[&str], rel_path: &str) -> bool {
    prefixes.iter().any(|p| rel_path.starts_with(p))
}

fn rule_applies(rule: RuleId, rel_path: &str, mode: ScopeMode) -> bool {
    if mode == ScopeMode::Everywhere {
        return true;
    }
    match rule {
        RuleId::Det001 => in_scope(SCHEDULE_AFFECTING, rel_path),
        RuleId::Det003 => in_scope(PANIC_FREE, rel_path),
        RuleId::Det002 => in_scope(WALL_CLOCK_SCOPE, rel_path),
        RuleId::Det004 => true,
        RuleId::Det005 => in_scope(FLOAT_EQ_SCOPE, rel_path),
        // Waiver-grammar rules follow the waivers, wherever they are.
        RuleId::Wvr001 | RuleId::Wvr002 | RuleId::Wvr003 => true,
    }
}

/// One diagnostic. Waived findings are kept (with their reason) so the JSON
/// report is a complete account; the console and the exit code only consider
/// unwaived ones.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    pub rule: RuleId,
    pub message: String,
    /// `Some(reason)` when an inline waiver covers this finding.
    pub waived: Option<String>,
}

impl Finding {
    /// Render in the `path:line: CODE message` shape used by
    /// `ScenarioError::located` diagnostics.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: {} {}",
            self.path,
            self.line,
            self.rule.code(),
            self.message
        )
    }
}

/// A successfully parsed waiver awaiting a finding to justify it.
#[derive(Debug)]
struct ParsedWaiver {
    line: u32,
    rule: RuleId,
    reason: String,
    used: bool,
}

/// Lint one file. `rel_path` must be workspace-relative with forward
/// slashes — it drives rule scoping and appears verbatim in diagnostics.
pub fn check_file(rel_path: &str, src: &str, mode: ScopeMode) -> Vec<Finding> {
    let lexed = lex(src);
    let mask = test_mask(&lexed.tokens);
    let test_lines = test_line_set(&lexed.tokens, &mask);

    let mut findings = Vec::new();
    det_rules(rel_path, &lexed, &mask, mode, &mut findings);

    let mut waivers = Vec::new();
    parse_waivers(rel_path, &lexed.waivers, &mut waivers, &mut findings);
    apply_waivers(&mut waivers, &mut findings);
    report_stale(rel_path, &waivers, &test_lines, &mut findings);

    findings.sort_by_key(|a| (a.line, a.rule));
    findings.dedup_by(|a, b| a.line == b.line && a.rule == b.rule && a.message == b.message);
    findings
}

/// Token indices inside `#[cfg(test)]` items or `#[test]` functions. The
/// determinism rules skip these: `unwrap()` is the correct idiom *inside*
/// the tests that enforce the invariants.
fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        let Some(attr_end) = match_test_attr(tokens, i) else {
            i += 1;
            continue;
        };
        // Skip any further attributes between the test attribute and the
        // item it decorates (`#[cfg(test)] #[allow(...)] mod tests`).
        let mut j = attr_end;
        while j + 1 < tokens.len() && tokens[j].is_punct('#') && tokens[j + 1].is_punct('[') {
            j = skip_balanced(tokens, j + 1, '[', ']');
        }
        // The item body ends at its matching `}`; an item with no body
        // (`#[cfg(test)] use super::*;`) ends at `;`.
        let mut end = tokens.len();
        let mut k = j;
        while k < tokens.len() {
            match tokens[k].kind {
                TokenKind::Punct(';') => {
                    end = k + 1;
                    break;
                }
                TokenKind::Punct('{') => {
                    end = skip_balanced(tokens, k, '{', '}');
                    break;
                }
                _ => k += 1,
            }
        }
        for slot in mask.iter_mut().take(end).skip(i) {
            *slot = true;
        }
        i = end;
    }
    mask
}

/// If `tokens[i..]` starts a `#[test]`-like or `#[cfg(test)]`-like
/// attribute, return the index just past its closing `]`.
fn match_test_attr(tokens: &[Token], i: usize) -> Option<usize> {
    if !(tokens.get(i)?.is_punct('#') && tokens.get(i + 1)?.is_punct('[')) {
        return None;
    }
    let end = skip_balanced(tokens, i + 1, '[', ']');
    let body = &tokens[i + 2..end.saturating_sub(1)];
    let is_test = match body.first().and_then(Token::ident) {
        // `#[cfg(test)]` and compositions like `#[cfg(all(test, unix))]`,
        // but never `#[cfg(not(test))]` — that attribute marks *live* code.
        Some("cfg") => {
            body.iter().any(|t| t.is_ident("test")) && !body.iter().any(|t| t.is_ident("not"))
        }
        Some(_) => body
            .iter()
            .filter_map(Token::ident)
            .next_back()
            .is_some_and(|last| last == "test"),
        None => false,
    };
    is_test.then_some(end)
}

/// Index just past the bracket that matches `tokens[open_idx]`.
fn skip_balanced(tokens: &[Token], open_idx: usize, open: char, close: char) -> usize {
    let mut depth = 0usize;
    let mut i = open_idx;
    while i < tokens.len() {
        if tokens[i].is_punct(open) {
            depth += 1;
        } else if tokens[i].is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    tokens.len()
}

/// 1-based lines that contain test-masked tokens (used to silence the
/// stale-waiver check inside test code).
fn test_line_set(tokens: &[Token], mask: &[bool]) -> BTreeSet<u32> {
    tokens
        .iter()
        .zip(mask)
        .filter(|(_, m)| **m)
        .map(|(t, _)| t.line)
        .collect()
}

/// Run the five determinism rules over the token stream.
fn det_rules(
    rel_path: &str,
    lexed: &LexedFile,
    mask: &[bool],
    mode: ScopeMode,
    out: &mut Vec<Finding>,
) {
    let toks = &lexed.tokens;
    let applies = |rule: RuleId| rule_applies(rule, rel_path, mode);
    let mut push = |rule: RuleId, line: u32, message: String| {
        out.push(Finding {
            path: rel_path.to_string(),
            line,
            rule,
            message,
            waived: None,
        });
    };
    for i in 0..toks.len() {
        if mask[i] {
            continue;
        }
        let tok = &toks[i];
        match &tok.kind {
            TokenKind::Ident(name) => match name.as_ref() {
                "HashMap" | "HashSet" if applies(RuleId::Det001) => {
                    push(
                        RuleId::Det001,
                        tok.line,
                        format!(
                            "`{name}` iteration order is hash-seeded; schedule-affecting code \
                             must use `BTree{}` or sort before iterating",
                            &name[4..]
                        ),
                    );
                }
                "Instant" | "SystemTime"
                    if applies(RuleId::Det002)
                        && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                        && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
                        && toks.get(i + 3).is_some_and(|t| t.is_ident("now")) =>
                {
                    push(
                        RuleId::Det002,
                        tok.line,
                        format!(
                            "wall-clock read `{name}::now()`; only `without_wall_clock`-scrubbed \
                             timing captures may read the clock (waive with the scrub site)"
                        ),
                    );
                }
                "unwrap" | "expect"
                    if applies(RuleId::Det003)
                        && i > 0
                        && toks[i - 1].is_punct('.')
                        && toks.get(i + 1).is_some_and(|t| t.is_punct('(')) =>
                {
                    push(
                        RuleId::Det003,
                        tok.line,
                        format!(
                            "`.{name}()` in engine/scheduler/solver code; convert to a typed \
                             error or waive with the invariant that rules the panic out"
                        ),
                    );
                }
                "panic" | "unreachable" | "todo" | "unimplemented"
                    if applies(RuleId::Det003)
                        && toks.get(i + 1).is_some_and(|t| t.is_punct('!')) =>
                {
                    push(
                        RuleId::Det003,
                        tok.line,
                        format!(
                            "`{name}!` in engine/scheduler/solver code; convert to a typed \
                             error or waive with the invariant that rules the panic out"
                        ),
                    );
                }
                "available_parallelism" if applies(RuleId::Det004) => {
                    push(
                        RuleId::Det004,
                        tok.line,
                        "`available_parallelism()` re-reads cgroup quotas per call; cache the \
                         result in a `OnceLock` (the PR 6 hot-path bug class)"
                            .to_string(),
                    );
                }
                "ThreadId" if applies(RuleId::Det004) => {
                    push(
                        RuleId::Det004,
                        tok.line,
                        "thread-identity-dependent code; schedules must not depend on which \
                         thread runs a task"
                            .to_string(),
                    );
                }
                "current"
                    if applies(RuleId::Det004)
                        && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
                        && toks.get(i + 2).is_some_and(|t| t.is_punct(')'))
                        && toks.get(i + 3).is_some_and(|t| t.is_punct('.'))
                        && toks.get(i + 4).is_some_and(|t| t.is_ident("id")) =>
                {
                    push(
                        RuleId::Det004,
                        tok.line,
                        "`thread::current().id()` branching; schedules must not depend on \
                         which thread runs a task"
                            .to_string(),
                    );
                }
                _ => {}
            },
            TokenKind::EqEq | TokenKind::NotEq if applies(RuleId::Det005) => {
                let float_before = i > 0 && toks[i - 1].kind == TokenKind::Float;
                let float_after = match toks.get(i + 1).map(|t| &t.kind) {
                    Some(TokenKind::Float) => true,
                    Some(TokenKind::Punct('-')) => {
                        toks.get(i + 2).map(|t| &t.kind) == Some(&TokenKind::Float)
                    }
                    _ => false,
                };
                if float_before || float_after {
                    let op = if tok.kind == TokenKind::EqEq {
                        "=="
                    } else {
                        "!="
                    };
                    push(
                        RuleId::Det005,
                        tok.line,
                        format!(
                            "float `{op}` against a literal in objective/accounting code; \
                             use `total_cmp` or an explicit epsilon"
                        ),
                    );
                }
            }
            _ => {}
        }
    }
}

/// Parse `lint:allow(RULE: reason)` comments. Malformed waivers become
/// findings (WVR001/WVR002) — an unjustified waiver must never silently
/// turn the rule off.
fn parse_waivers(
    rel_path: &str,
    comments: &[WaiverComment],
    waivers: &mut Vec<ParsedWaiver>,
    findings: &mut Vec<Finding>,
) {
    for comment in comments {
        let mut bad = |rule: RuleId, message: String| {
            findings.push(Finding {
                path: rel_path.to_string(),
                line: comment.line,
                rule,
                message,
                waived: None,
            });
        };
        let Some(start) = comment.text.find("lint:allow") else {
            continue;
        };
        let rest = comment.text[start + "lint:allow".len()..].trim_start();
        let Some(body) = rest
            .strip_prefix('(')
            .and_then(|r| r.rfind(')').map(|end| &r[..end]))
        else {
            bad(
                RuleId::Wvr001,
                "malformed waiver; expected `lint:allow(DET00N: reason)`".to_string(),
            );
            continue;
        };
        let (code, reason) = match body.split_once(':') {
            Some((code, reason)) => (code.trim(), reason.trim()),
            None => (body.trim(), ""),
        };
        let Some(rule) = RuleId::from_code(code) else {
            bad(
                RuleId::Wvr002,
                format!("waiver names unknown rule `{code}`; known rules are DET001..DET005"),
            );
            continue;
        };
        if reason.is_empty() {
            bad(
                RuleId::Wvr001,
                format!(
                    "waiver for {code} has no reason; a waiver is a claim and must say why \
                     (`lint:allow({code}: reason)`)"
                ),
            );
            continue;
        }
        waivers.push(ParsedWaiver {
            line: comment.line,
            rule,
            reason: reason.to_string(),
            used: false,
        });
    }
}

/// A waiver covers findings of its rule on its own line (trailing comment)
/// and on the next line (comment-above style).
fn apply_waivers(waivers: &mut [ParsedWaiver], findings: &mut [Finding]) {
    for finding in findings.iter_mut() {
        if finding.waived.is_some() {
            continue;
        }
        if let Some(waiver) = waivers.iter_mut().find(|w| {
            w.rule == finding.rule && (w.line == finding.line || w.line + 1 == finding.line)
        }) {
            waiver.used = true;
            finding.waived = Some(waiver.reason.clone());
        }
    }
}

/// An unused waiver outside test code is stale: either the violation was
/// fixed (delete the waiver) or the waiver drifted away from the line it
/// used to cover (move it back).
fn report_stale(
    rel_path: &str,
    waivers: &[ParsedWaiver],
    test_lines: &BTreeSet<u32>,
    findings: &mut Vec<Finding>,
) {
    for waiver in waivers {
        if waiver.used
            || test_lines.contains(&waiver.line)
            || test_lines.contains(&(waiver.line + 1))
        {
            continue;
        }
        findings.push(Finding {
            path: rel_path.to_string(),
            line: waiver.line,
            rule: RuleId::Wvr003,
            message: format!(
                "stale waiver: {} fires on neither line {} nor line {}; remove it",
                waiver.rule.code(),
                waiver.line,
                waiver.line + 1
            ),
            waived: None,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(src: &str) -> Vec<(u32, &'static str)> {
        check_file("fixture.rs", src, ScopeMode::Everywhere)
            .into_iter()
            .filter(|f| f.waived.is_none())
            .map(|f| (f.line, f.rule.code()))
            .collect()
    }

    #[test]
    fn cfg_test_modules_are_masked() {
        let src = "fn live() { x.unwrap(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn t() { y.unwrap(); let m = HashMap::new(); }\n\
                   }\n";
        assert_eq!(codes(src), vec![(1, "DET003")]);
    }

    #[test]
    fn test_fn_attribute_masks_only_that_fn() {
        let src = "#[test]\nfn t() { y.unwrap(); }\nfn live() { z.unwrap(); }\n";
        assert_eq!(codes(src), vec![(3, "DET003")]);
    }

    #[test]
    fn unwrap_or_is_not_det003() {
        assert_eq!(
            codes("fn f() { x.unwrap_or(0).expect_none_method(); }"),
            vec![]
        );
    }

    #[test]
    fn waiver_on_same_or_previous_line_suppresses() {
        let src = "// lint:allow(DET003: invariant documented here)\n\
                   fn f() { x.unwrap(); }\n\
                   fn g() { y.unwrap(); } // lint:allow(DET003: other invariant)\n";
        assert_eq!(codes(src), vec![]);
        let all = check_file("fixture.rs", src, ScopeMode::Everywhere);
        assert_eq!(all.len(), 2);
        assert!(all.iter().all(|f| f.waived.is_some()));
    }

    #[test]
    fn waiver_without_reason_is_wvr001() {
        let src = "fn f() { x.unwrap(); } // lint:allow(DET003)\n";
        assert_eq!(codes(src), vec![(1, "DET003"), (1, "WVR001")]);
    }

    #[test]
    fn unknown_rule_waiver_is_wvr002() {
        let src = "// lint:allow(DET999: whatever)\nfn f() {}\n";
        assert_eq!(codes(src), vec![(1, "WVR002")]);
    }

    #[test]
    fn stale_waiver_is_wvr003() {
        let src = "// lint:allow(DET001: used to hold a HashMap)\nfn clean() {}\n";
        assert_eq!(codes(src), vec![(1, "WVR003")]);
    }

    #[test]
    fn float_eq_triggers_on_either_side_and_negatives() {
        assert_eq!(
            codes("fn f(x: f64) { if x == 0.0 {} if 1.5 != x {} if x == -2.0 {} }"),
            vec![(1, "DET005"), (1, "DET005"), (1, "DET005")]
        );
        assert_eq!(codes("fn f(n: usize) { if n == 0 {} }"), vec![]);
    }

    #[test]
    fn wall_clock_and_parallelism_rules_fire() {
        let src = "fn f() { let t = Instant::now(); }\n\
                   fn g() { let n = std::thread::available_parallelism(); }\n\
                   fn h() { let id = std::thread::current().id(); }\n";
        assert_eq!(
            codes(src),
            vec![(1, "DET002"), (2, "DET004"), (3, "DET004")]
        );
    }

    #[test]
    fn workspace_scope_limits_rules_to_their_crates() {
        // Two `HashMap` tokens on one line collapse into a single finding.
        let src = "fn f() { let m: HashMap<u32, u32> = HashMap::new(); }";
        assert_eq!(
            check_file("crates/core/src/x.rs", src, ScopeMode::Workspace).len(),
            1
        );
        // The service is out of DET001's scope (its maps never order a
        // schedule) ...
        assert_eq!(
            check_file("crates/service/src/x.rs", src, ScopeMode::Workspace).len(),
            0
        );
        // ... but inside DET003's: a panic in the multi-session host takes
        // every tenant down.
        let panicky = "fn f(m: &Mutex<u32>) { let g = m.lock().unwrap(); }";
        assert_eq!(
            check_file("crates/service/src/x.rs", panicky, ScopeMode::Workspace)
                .iter()
                .filter(|f| f.rule.code() == "DET003")
                .count(),
            1
        );
        assert_eq!(
            check_file("crates/bench/src/x.rs", panicky, ScopeMode::Workspace).len(),
            0
        );
    }
}
