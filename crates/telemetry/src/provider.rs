//! The [`ConditionsProvider`] abstraction consumed by schedulers and the
//! simulator, plus its synthetic, constant, and perturbed implementations.

use crate::grid::{GridModel, GridSeries};
use crate::region::{Region, ALL_REGIONS};
use crate::series::HourlySeries;
use crate::weather::WeatherModel;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use waterwise_sustain::{
    CarbonIntensity, CoolingModel, EwifDataset, LitersPerKwh, RegionConditions, Seconds,
    WaterScarcityFactor, WaterUsageEffectiveness,
};

/// Provides the environmental conditions of every region at any simulation
/// time. Implementations must be cheap to query (the simulator asks for
/// conditions on every scheduling round and job completion).
pub trait ConditionsProvider: Send + Sync {
    /// Conditions (CI, EWIF, WUE, WSF) of `region` at simulation time `at`.
    fn conditions(&self, region: Region, at: Seconds) -> RegionConditions;

    /// The water scarcity factor of a region (time-invariant in the paper).
    fn wsf(&self, region: Region) -> WaterScarcityFactor {
        self.conditions(region, Seconds::zero()).wsf
    }

    /// Trailing mean carbon intensity over `window_hours`, used by the
    /// scheduler's history learner (`CO2_ref` in Eq. 8).
    fn trailing_carbon(&self, region: Region, at: Seconds, window_hours: usize) -> CarbonIntensity {
        let mut sum = 0.0;
        let window = window_hours.max(1);
        for k in 0..window {
            let t = Seconds::new((at.value() - k as f64 * 3600.0).max(0.0));
            sum += self.conditions(region, t).carbon_intensity.value();
        }
        CarbonIntensity::new(sum / window as f64)
    }

    /// Trailing mean water intensity components (EWIF + WUE weighted) over
    /// `window_hours`, expressed through Eq. 6 with the given PUE — the
    /// `H2O_ref` term of Eq. 8.
    fn trailing_water_intensity(
        &self,
        region: Region,
        at: Seconds,
        window_hours: usize,
        pue: f64,
    ) -> f64 {
        let window = window_hours.max(1);
        let mut sum = 0.0;
        for k in 0..window {
            let t = Seconds::new((at.value() - k as f64 * 3600.0).max(0.0));
            let c = self.conditions(region, t);
            sum += c.water_intensity(pue).value();
        }
        sum / window as f64
    }
}

/// Configuration of the synthetic telemetry generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TelemetryConfig {
    /// RNG seed; every series is a deterministic function of it.
    pub seed: u64,
    /// Horizon to pre-generate, in days (lookups beyond it wrap around).
    pub horizon_days: usize,
    /// Which per-source EWIF dataset to use.
    pub dataset: EwifDataset,
    /// Cooling model mapping wet-bulb temperature to WUE.
    pub cooling: CoolingModel,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self {
            seed: 0x057A_7E12_F00D,
            horizon_days: 30,
            dataset: EwifDataset::Primary,
            cooling: CoolingModel::default(),
        }
    }
}

/// Pre-generated synthetic telemetry for all five regions.
///
/// ```
/// use waterwise_telemetry::{ConditionsProvider, Region, SyntheticTelemetry};
/// use waterwise_sustain::Seconds;
///
/// let telemetry = SyntheticTelemetry::with_seed(42);
/// let conditions = telemetry.conditions(Region::Oregon, Seconds::from_hours(12.0));
/// assert!(conditions.carbon_intensity.value() > 0.0);
/// // Seeded generation is deterministic: the same seed replays the same
/// // conditions.
/// let again = SyntheticTelemetry::with_seed(42);
/// assert_eq!(
///     conditions,
///     again.conditions(Region::Oregon, Seconds::from_hours(12.0)),
/// );
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticTelemetry {
    config: TelemetryConfig,
    regions: Vec<RegionSeries>,
}

#[derive(Debug, Clone)]
struct RegionSeries {
    wsf: WaterScarcityFactor,
    grid: GridSeries,
    wue: HourlySeries,
}

impl SyntheticTelemetry {
    /// Generate telemetry for all regions under the given configuration.
    pub fn generate(config: TelemetryConfig) -> Self {
        let hours = (config.horizon_days.max(1)) * 24;
        let regions = ALL_REGIONS
            .iter()
            .map(|&region| {
                let profile = region.profile();
                let grid = GridModel::new(profile.clone(), config.seed).generate(hours);
                let weather = WeatherModel::new(profile.climate, config.seed).generate(hours);
                let wue = HourlySeries::generate(hours, |h| {
                    config.cooling.wue(weather.at_hour(h)).value()
                });
                RegionSeries {
                    wsf: profile.wsf,
                    grid,
                    wue,
                }
            })
            .collect();
        Self { config, regions }
    }

    /// Generate with default configuration and a seed.
    pub fn with_seed(seed: u64) -> Self {
        Self::generate(TelemetryConfig {
            seed,
            ..TelemetryConfig::default()
        })
    }

    /// The configuration used to generate this telemetry.
    pub fn config(&self) -> &TelemetryConfig {
        &self.config
    }

    /// The generated hourly carbon-intensity series of a region.
    pub fn carbon_series(&self, region: Region) -> &HourlySeries {
        &self.regions[region.index()].grid.carbon_intensity
    }

    /// The generated hourly WUE series of a region.
    pub fn wue_series(&self, region: Region) -> &HourlySeries {
        &self.regions[region.index()].wue
    }

    /// The generated hourly regional-EWIF series of a region under the
    /// configured dataset.
    pub fn ewif_series(&self, region: Region) -> &HourlySeries {
        let r = &self.regions[region.index()];
        match self.config.dataset {
            EwifDataset::Primary => &r.grid.ewif_primary,
            EwifDataset::WorldResourcesInstitute => &r.grid.ewif_wri,
        }
    }

    /// The generated hourly renewable-fraction series of a region.
    pub fn renewable_series(&self, region: Region) -> &HourlySeries {
        &self.regions[region.index()].grid.renewable_fraction
    }

    /// Wrap this telemetry in an [`Arc`] for sharing across schedulers and
    /// the simulator.
    pub fn shared(self) -> Arc<Self> {
        Arc::new(self)
    }
}

impl ConditionsProvider for SyntheticTelemetry {
    fn conditions(&self, region: Region, at: Seconds) -> RegionConditions {
        let r = &self.regions[region.index()];
        let ewif = match self.config.dataset {
            EwifDataset::Primary => r.grid.ewif_primary.at(at),
            EwifDataset::WorldResourcesInstitute => r.grid.ewif_wri.at(at),
        };
        RegionConditions {
            carbon_intensity: CarbonIntensity::new(r.grid.carbon_intensity.at(at)),
            ewif: LitersPerKwh::new(ewif),
            wue: WaterUsageEffectiveness::new(r.wue.at(at)),
            wsf: r.wsf,
        }
    }
}

impl<P: ConditionsProvider + ?Sized> ConditionsProvider for Arc<P> {
    fn conditions(&self, region: Region, at: Seconds) -> RegionConditions {
        (**self).conditions(region, at)
    }
}

/// A provider with fixed, time-invariant conditions per region — useful for
/// unit tests and for isolating spatial from temporal effects in ablations.
#[derive(Debug, Clone)]
pub struct ConstantConditions {
    per_region: Vec<RegionConditions>,
}

impl ConstantConditions {
    /// Build from explicit per-region conditions (indexed by [`Region::index`]).
    pub fn new(per_region: Vec<RegionConditions>) -> Self {
        assert_eq!(per_region.len(), ALL_REGIONS.len());
        Self { per_region }
    }

    /// Build from each region's annual-average profile values.
    pub fn from_profiles(dataset: EwifDataset, cooling: &CoolingModel) -> Self {
        let per_region = ALL_REGIONS
            .iter()
            .map(|r| {
                let p = r.profile();
                RegionConditions {
                    carbon_intensity: p.base_mix.carbon_intensity(),
                    ewif: p.base_mix.ewif(dataset),
                    wue: cooling.wue(p.climate.mean_wet_bulb),
                    wsf: p.wsf,
                }
            })
            .collect();
        Self { per_region }
    }
}

impl ConditionsProvider for ConstantConditions {
    fn conditions(&self, region: Region, _at: Seconds) -> RegionConditions {
        self.per_region[region.index()]
    }
}

/// Wraps another provider and applies multiplicative perturbations to the
/// carbon- and water-related signals — used for the paper's ±10% sensitivity
/// analysis of embodied carbon and water intensity estimates.
#[derive(Debug, Clone)]
pub struct PerturbedProvider<P> {
    inner: P,
    /// Factor applied to carbon intensity.
    pub carbon_factor: f64,
    /// Factor applied to EWIF and WUE (the water-intensity components).
    pub water_factor: f64,
}

impl<P: ConditionsProvider> PerturbedProvider<P> {
    /// Wrap a provider with carbon/water perturbation factors.
    pub fn new(inner: P, carbon_factor: f64, water_factor: f64) -> Self {
        Self {
            inner,
            carbon_factor,
            water_factor,
        }
    }
}

impl<P: ConditionsProvider> ConditionsProvider for PerturbedProvider<P> {
    fn conditions(&self, region: Region, at: Seconds) -> RegionConditions {
        let c = self.inner.conditions(region, at);
        RegionConditions {
            carbon_intensity: c.carbon_intensity.scaled(self.carbon_factor),
            ewif: LitersPerKwh::new(c.ewif.value() * self.water_factor),
            wue: WaterUsageEffectiveness::new(c.wue.value() * self.water_factor),
            wsf: c.wsf,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_generation_and_lookup() {
        let telemetry = SyntheticTelemetry::with_seed(7);
        let c = telemetry.conditions(Region::Zurich, Seconds::from_hours(5.5));
        assert!(c.carbon_intensity.value() > 0.0);
        assert!(c.ewif.value() > 0.0);
        assert!(c.wue.value() >= 0.0);
        assert_eq!(c.wsf.value(), Region::Zurich.profile().wsf.value());
    }

    #[test]
    fn lookup_wraps_beyond_horizon() {
        let telemetry = SyntheticTelemetry::generate(TelemetryConfig {
            seed: 3,
            horizon_days: 2,
            ..TelemetryConfig::default()
        });
        let inside = telemetry.conditions(Region::Milan, Seconds::from_hours(10.0));
        let wrapped = telemetry.conditions(Region::Milan, Seconds::from_hours(10.0 + 48.0));
        assert_eq!(inside.carbon_intensity, wrapped.carbon_intensity);
    }

    #[test]
    fn spatial_carbon_water_tension_is_present() {
        let telemetry = SyntheticTelemetry::with_seed(11);
        let t = Seconds::from_hours(12.0);
        let zurich = telemetry.conditions(Region::Zurich, t);
        let mumbai = telemetry.conditions(Region::Mumbai, t);
        assert!(zurich.carbon_intensity.value() < mumbai.carbon_intensity.value());
        assert!(zurich.ewif.value() > mumbai.ewif.value());
        assert!(mumbai.wue.value() > zurich.wue.value());
    }

    #[test]
    fn trailing_means_are_smoother_than_instantaneous() {
        let telemetry = SyntheticTelemetry::with_seed(5);
        let at = Seconds::from_hours(200.0);
        let inst = telemetry
            .conditions(Region::Oregon, at)
            .carbon_intensity
            .value();
        let trail = telemetry.trailing_carbon(Region::Oregon, at, 10).value();
        assert!(trail > 0.0);
        // Not a strict smoothness guarantee, but both must be in a sane range.
        assert!(inst > 0.0 && inst < 1600.0 && trail < 1600.0);
    }

    #[test]
    fn constant_provider_is_time_invariant() {
        let p = ConstantConditions::from_profiles(EwifDataset::Primary, &CoolingModel::default());
        let a = p.conditions(Region::Madrid, Seconds::zero());
        let b = p.conditions(Region::Madrid, Seconds::from_hours(1000.0));
        assert_eq!(a, b);
    }

    #[test]
    fn perturbation_scales_carbon_and_water() {
        let base =
            ConstantConditions::from_profiles(EwifDataset::Primary, &CoolingModel::default());
        let reference = base.conditions(Region::Oregon, Seconds::zero());
        let perturbed = PerturbedProvider::new(base, 1.1, 0.9);
        let c = perturbed.conditions(Region::Oregon, Seconds::zero());
        assert!(
            (c.carbon_intensity.value() / reference.carbon_intensity.value() - 1.1).abs() < 1e-9
        );
        assert!((c.ewif.value() / reference.ewif.value() - 0.9).abs() < 1e-9);
        assert!((c.wue.value() / reference.wue.value() - 0.9).abs() < 1e-9);
        assert_eq!(c.wsf, reference.wsf);
    }

    #[test]
    fn wri_dataset_changes_conditions() {
        let primary = SyntheticTelemetry::generate(TelemetryConfig {
            seed: 9,
            horizon_days: 5,
            dataset: EwifDataset::Primary,
            ..TelemetryConfig::default()
        });
        let wri = SyntheticTelemetry::generate(TelemetryConfig {
            seed: 9,
            horizon_days: 5,
            dataset: EwifDataset::WorldResourcesInstitute,
            ..TelemetryConfig::default()
        });
        let t = Seconds::from_hours(30.0);
        let a = primary.conditions(Region::Zurich, t);
        let b = wri.conditions(Region::Zurich, t);
        assert_ne!(a.ewif, b.ewif);
        assert_eq!(a.carbon_intensity, b.carbon_intensity);
    }

    #[test]
    fn arc_provider_passthrough() {
        let telemetry = SyntheticTelemetry::with_seed(2).shared();
        let direct = telemetry.conditions(Region::Mumbai, Seconds::from_hours(3.0));
        let via_trait: &dyn ConditionsProvider = &telemetry;
        assert_eq!(
            via_trait.conditions(Region::Mumbai, Seconds::from_hours(3.0)),
            direct
        );
    }
}
