//! A simple hourly time-series container used for all synthetic telemetry.

use serde::{Deserialize, Serialize};
use waterwise_sustain::Seconds;

/// A fixed-resolution (hourly) time series starting at simulation time zero.
///
/// Lookups outside the generated horizon wrap around, so a 1-year series can
/// back a multi-year simulation without special-casing, and short test
/// horizons never panic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HourlySeries {
    values: Vec<f64>,
}

impl HourlySeries {
    /// Build a series from hourly samples. Panics if `values` is empty.
    pub fn new(values: Vec<f64>) -> Self {
        assert!(
            !values.is_empty(),
            "an HourlySeries needs at least one sample"
        );
        Self { values }
    }

    /// Generate `hours` samples from a function of the hour index.
    pub fn generate(hours: usize, mut f: impl FnMut(usize) -> f64) -> Self {
        Self::new((0..hours.max(1)).map(&mut f).collect())
    }

    /// Number of hourly samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if there is exactly one sample (constant series).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Raw samples.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Sample at an hour index (wrapping).
    pub fn at_hour(&self, hour: usize) -> f64 {
        self.values[hour % self.values.len()]
    }

    /// Sample at a simulation time, using the hour that contains it
    /// (wrapping beyond the horizon).
    pub fn at(&self, time: Seconds) -> f64 {
        let hour = (time.value().max(0.0) / 3600.0).floor() as usize;
        self.at_hour(hour)
    }

    /// Linearly interpolated sample at a simulation time (wrapping).
    pub fn interpolate(&self, time: Seconds) -> f64 {
        let hours = time.value().max(0.0) / 3600.0;
        let lo = hours.floor() as usize;
        let frac = hours - hours.floor();
        let a = self.at_hour(lo);
        let b = self.at_hour(lo + 1);
        a + (b - a) * frac
    }

    /// Arithmetic mean of all samples.
    pub fn mean(&self) -> f64 {
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Minimum sample.
    pub fn min(&self) -> f64 {
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Maximum sample.
    pub fn max(&self) -> f64 {
        self.values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Population standard deviation of the samples.
    pub fn std_dev(&self) -> f64 {
        let mean = self.mean();
        let var = self
            .values
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / self.values.len() as f64;
        var.sqrt()
    }

    /// Mean of the `window` samples ending at (and including) the hour that
    /// contains `time` — used by the scheduler's history learner.
    pub fn trailing_mean(&self, time: Seconds, window: usize) -> f64 {
        let window = window.max(1);
        let end = (time.value().max(0.0) / 3600.0).floor() as usize;
        let sum: f64 = (0..window)
            .map(|k| self.at_hour((end + self.values.len() * window).saturating_sub(k)))
            .sum();
        sum / window as f64
    }

    /// Apply a multiplicative factor to every sample.
    pub fn scaled(&self, factor: f64) -> Self {
        Self::new(self.values.iter().map(|v| v * factor).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookups_wrap_around() {
        let s = HourlySeries::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(s.at_hour(0), 1.0);
        assert_eq!(s.at_hour(3), 1.0);
        assert_eq!(s.at_hour(4), 2.0);
        assert_eq!(s.at(Seconds::from_hours(2.5)), 3.0);
        assert_eq!(s.at(Seconds::from_hours(3.5)), 1.0);
    }

    #[test]
    fn interpolation_is_linear_within_an_hour() {
        let s = HourlySeries::new(vec![0.0, 10.0]);
        assert!((s.interpolate(Seconds::from_hours(0.5)) - 5.0).abs() < 1e-12);
        assert!((s.interpolate(Seconds::from_hours(0.25)) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn negative_times_clamp_to_start() {
        let s = HourlySeries::new(vec![7.0, 8.0]);
        assert_eq!(s.at(Seconds::new(-100.0)), 7.0);
    }

    #[test]
    fn statistics() {
        let s = HourlySeries::new(vec![2.0, 4.0, 6.0, 8.0]);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 8.0);
        assert!(s.std_dev() > 0.0);
    }

    #[test]
    fn trailing_mean_covers_window() {
        let s = HourlySeries::new(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        // At hour 4, a window of 3 covers hours 2, 3, 4 -> mean 4.
        let m = s.trailing_mean(Seconds::from_hours(4.2), 3);
        assert!((m - 4.0).abs() < 1e-12, "got {m}");
    }

    #[test]
    fn generate_and_scale() {
        let s = HourlySeries::generate(24, |h| h as f64);
        assert_eq!(s.len(), 24);
        let scaled = s.scaled(2.0);
        assert_eq!(scaled.at_hour(3), 6.0);
    }

    #[test]
    #[should_panic]
    fn empty_series_panics() {
        HourlySeries::new(vec![]);
    }
}
