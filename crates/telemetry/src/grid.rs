//! Synthetic hourly energy-mix model and the derived carbon intensity and
//! regional EWIF series.
//!
//! The paper consumes the live energy-mix breakdown from Electricity Maps.
//! This module replaces it with a seeded generative model per region:
//!
//! * the solar share follows the daylight curve (zero at night, peaking at
//!   noon), with the shortfall covered by dispatchable gas;
//! * the wind share follows a slow, auto-correlated random walk;
//! * the hydro share has a seasonal cycle (spring melt / monsoon);
//! * a small amount of hour-to-hour noise is added to every share.
//!
//! The resulting hourly [`EnergyMix`] is mapped to carbon intensity and
//! regional EWIF with the per-source factors of Fig. 1, yielding series with
//! the temporal structure of Fig. 2(e).

use crate::region::RegionProfile;
use crate::series::HourlySeries;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::f64::consts::TAU;
use waterwise_sustain::{EnergyMix, EnergySource, EwifDataset};

/// Synthetic grid model for one region.
#[derive(Debug, Clone)]
pub struct GridModel {
    profile: RegionProfile,
    seed: u64,
}

/// The hourly output of the grid model for one region.
#[derive(Debug, Clone, PartialEq)]
pub struct GridSeries {
    /// Hourly carbon intensity (gCO2/kWh).
    pub carbon_intensity: HourlySeries,
    /// Hourly regional EWIF (L/kWh) under the primary dataset.
    pub ewif_primary: HourlySeries,
    /// Hourly regional EWIF (L/kWh) under the WRI-style dataset.
    pub ewif_wri: HourlySeries,
    /// Hourly renewable fraction (0–1), useful for diagnostics and the
    /// Ecovisor-style carbon scaler.
    pub renewable_fraction: HourlySeries,
}

impl GridModel {
    /// Build a grid model for a region profile and seed.
    pub fn new(profile: RegionProfile, seed: u64) -> Self {
        Self { profile, seed }
    }

    /// The energy mix at a given hour (deterministic function of the seed).
    pub fn mix_at_hour(&self, hour: usize, noise: &GridNoise) -> EnergyMix {
        let p = &self.profile;
        let hour_of_day = (hour % 24) as f64;
        let day = (hour / 24) as f64;

        // Daylight factor: 0 at night, ~1 at solar noon.
        let daylight = ((TAU * (hour_of_day - 12.0) / 24.0).cos().max(0.0)).powf(0.8);
        let solar_factor = (1.0 - p.solar_variability) + p.solar_variability * daylight * 2.0;

        // Seasonal hydro availability (peaks in late spring).
        let hydro_factor = 1.0 + p.hydro_seasonality * (TAU * (day - 140.0) / 365.0).cos();

        // Slow wind swings plus per-hour noise.
        let wind_factor = (1.0 + p.wind_variability * noise.wind[hour % noise.wind.len()]).max(0.1);
        let jitter =
            |idx: usize| 1.0 + p.mix_noise * noise.jitter[(hour + idx * 97) % noise.jitter.len()];

        let mut pairs: Vec<(EnergySource, f64)> = Vec::new();
        for (source, share) in p.base_mix.shares() {
            let factor = match source {
                EnergySource::Solar => solar_factor,
                EnergySource::Wind => wind_factor,
                EnergySource::Hydro => hydro_factor,
                _ => 1.0,
            } * jitter(source as usize);
            pairs.push((source, share * factor.max(0.0)));
        }
        // Dispatchable gas covers whatever renewables do not supply: boost the
        // gas share by the renewable shortfall before normalization.
        let renewable_now: f64 = pairs
            .iter()
            .filter(|(s, _)| s.is_renewable())
            .map(|(_, v)| *v)
            .sum();
        let renewable_base: f64 = p
            .base_mix
            .shares()
            .filter(|(s, _)| s.is_renewable())
            .map(|(_, v)| v)
            .sum();
        let shortfall = (renewable_base - renewable_now).max(0.0);
        if shortfall > 0.0 {
            if let Some(entry) = pairs.iter_mut().find(|(s, _)| *s == EnergySource::Gas) {
                entry.1 += shortfall;
            } else {
                pairs.push((EnergySource::Gas, shortfall));
            }
        }
        EnergyMix::new(pairs)
    }

    /// Generate all derived series for a horizon of `hours`.
    pub fn generate(&self, hours: usize) -> GridSeries {
        let noise =
            GridNoise::generate(self.seed ^ (self.profile.region.index() as u64 + 1), hours);
        let mut ci = Vec::with_capacity(hours);
        let mut ewif_p = Vec::with_capacity(hours);
        let mut ewif_w = Vec::with_capacity(hours);
        let mut renew = Vec::with_capacity(hours);
        for hour in 0..hours.max(1) {
            let mix = self.mix_at_hour(hour, &noise);
            // Grid-level volatility multiplier (imports/exports, demand, and
            // dispatch decisions not captured by the base mix).
            let volatility =
                (self.profile.carbon_volatility * noise.grid[hour % noise.grid.len()]).exp();
            ci.push(mix.carbon_intensity().value() * volatility);
            ewif_p.push(mix.ewif(EwifDataset::Primary).value());
            ewif_w.push(mix.ewif(EwifDataset::WorldResourcesInstitute).value());
            renew.push(mix.renewable_fraction());
        }
        GridSeries {
            carbon_intensity: HourlySeries::new(ci),
            ewif_primary: HourlySeries::new(ewif_p),
            ewif_wri: HourlySeries::new(ewif_w),
            renewable_fraction: HourlySeries::new(renew),
        }
    }
}

/// Pre-generated noise tracks shared across the hourly mix evaluations so
/// that the series are deterministic and auto-correlated.
#[derive(Debug, Clone)]
pub struct GridNoise {
    wind: Vec<f64>,
    jitter: Vec<f64>,
    grid: Vec<f64>,
}

impl GridNoise {
    fn generate(seed: u64, hours: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9eed_22bb_88ff_0002);
        let n = hours.max(24);
        let mut wind = Vec::with_capacity(n);
        let mut level: f64 = 0.0;
        for _ in 0..n {
            // AR(1) with a 12-hour-ish correlation time.
            let shock: f64 = rng.gen_range(-1.0f64..1.0);
            level = 0.92 * level + 0.39 * shock;
            wind.push(level.clamp(-1.0, 1.0));
        }
        let jitter: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0f64..1.0)).collect();
        // Slow grid-level swings (several-day correlation time) used for the
        // carbon-intensity volatility multiplier.
        let mut grid = Vec::with_capacity(n);
        let mut glevel: f64 = 0.0;
        for _ in 0..n {
            let shock: f64 = rng.gen_range(-1.0f64..1.0);
            glevel = 0.985 * glevel + 0.17 * shock;
            grid.push(glevel.clamp(-1.5, 1.5));
        }
        Self { wind, jitter, grid }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::{Region, ALL_REGIONS};

    fn series_for(region: Region, seed: u64, hours: usize) -> GridSeries {
        GridModel::new(region.profile(), seed).generate(hours)
    }

    #[test]
    fn deterministic_per_seed() {
        let a = series_for(Region::Oregon, 11, 24 * 14);
        let b = series_for(Region::Oregon, 11, 24 * 14);
        let c = series_for(Region::Oregon, 12, 24 * 14);
        assert_eq!(a, b);
        assert_ne!(a.carbon_intensity, c.carbon_intensity);
    }

    #[test]
    fn regional_carbon_ordering_matches_fig2a() {
        let means: Vec<f64> = ALL_REGIONS
            .iter()
            .map(|r| series_for(*r, 5, 24 * 60).carbon_intensity.mean())
            .collect();
        // The slow grid-volatility multiplier can bring adjacent regions
        // (Oregon/Milan) within a few percent of each other for a given
        // seed, so require the ordering only up to a 10% band.
        for w in means.windows(2) {
            assert!(w[0] < w[1] * 1.10, "mean CI ordering violated: {means:?}");
        }
        // The extremes must still be far apart.
        assert!(
            means[0] * 3.0 < means[4],
            "Zurich vs Mumbai gap too small: {means:?}"
        );
    }

    #[test]
    fn zurich_has_highest_mean_ewif() {
        let ewifs: Vec<f64> = ALL_REGIONS
            .iter()
            .map(|r| series_for(*r, 5, 24 * 60).ewif_primary.mean())
            .collect();
        let zurich = ewifs[Region::Zurich.index()];
        for (i, v) in ewifs.iter().enumerate() {
            if i != Region::Zurich.index() {
                assert!(zurich > *v, "Zurich EWIF should dominate: {ewifs:?}");
            }
        }
        // Mumbai (coal-heavy) sits well below Zurich.
        let mumbai = ewifs[Region::Mumbai.index()];
        assert!(zurich > 2.0 * mumbai, "Zurich {zurich} vs Mumbai {mumbai}");
    }

    #[test]
    fn carbon_intensity_varies_over_time() {
        let s = series_for(Region::Oregon, 5, 24 * 90);
        assert!(
            s.carbon_intensity.std_dev() > 5.0,
            "CI should have temporal variation"
        );
        assert!(s.carbon_intensity.max() > s.carbon_intensity.min() * 1.2);
    }

    #[test]
    fn values_are_physical() {
        for r in ALL_REGIONS {
            let s = series_for(r, 3, 24 * 30);
            assert!(s.carbon_intensity.min() > 0.0);
            assert!(s.carbon_intensity.max() < 1600.0);
            assert!(s.ewif_primary.min() >= 0.0);
            assert!(s.ewif_primary.max() < 25.0);
            assert!(s.renewable_fraction.min() >= 0.0);
            assert!(s.renewable_fraction.max() <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn wri_dataset_produces_different_ewif() {
        let s = series_for(Region::Zurich, 3, 24 * 30);
        assert!((s.ewif_primary.mean() - s.ewif_wri.mean()).abs() > 0.1);
    }
}
