//! # waterwise-telemetry
//!
//! Region profiles and synthetic environmental telemetry for the WaterWise
//! scheduler: hourly carbon intensity, regional EWIF, water usage
//! effectiveness (from synthetic wet-bulb temperature), and water scarcity
//! factors for the five data-center regions the paper evaluates
//! (Zurich, Madrid, Oregon, Milan, Mumbai).
//!
//! The original artifact feeds live Electricity Maps, Meteologix, and
//! Our-World-in-Data feeds into the scheduler. Those feeds are not available
//! offline, so this crate generates *seeded synthetic* series whose spatial
//! ordering and temporal variability match the characterization in Fig. 2 of
//! the paper (see `DESIGN.md` for the substitution rationale). All series are
//! deterministic functions of the seed, so experiments are reproducible.
//!
//! * [`region`] — the five regions and their static profiles (WSF, climate,
//!   base energy mix).
//! * [`weather`] — synthetic wet-bulb temperature model.
//! * [`grid`] — synthetic hourly energy-mix model and the derived carbon
//!   intensity / EWIF.
//! * [`series`] — a simple hourly time-series container.
//! * [`provider`] — the [`ConditionsProvider`] trait consumed by schedulers
//!   and the simulator, with synthetic, constant, and perturbed
//!   implementations.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod grid;
pub mod provider;
pub mod region;
pub mod series;
pub mod weather;

pub use provider::{
    ConditionsProvider, ConstantConditions, PerturbedProvider, SyntheticTelemetry, TelemetryConfig,
};
pub use region::{Region, RegionProfile, ALL_REGIONS};
pub use series::HourlySeries;
pub use weather::WeatherModel;
