//! The five data-center regions evaluated in the paper and their static
//! profiles.

use serde::{Deserialize, Serialize};
use std::fmt;
use waterwise_sustain::{EnergyMix, EnergySource, WaterScarcityFactor};

/// A geographic data-center region.
///
/// These correspond to the five AWS regions of the paper's testbed:
/// `eu-central-2` (Zurich), `eu-south-2` (Madrid/Spain), `us-west-2`
/// (Oregon), `eu-south-1` (Milan), and `ap-south-1` (Mumbai).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Region {
    /// Zurich, Switzerland (`eu-central-2`) — very clean, hydro-heavy grid.
    Zurich,
    /// Madrid, Spain (`eu-south-2`) — renewable-heavy but water-stressed.
    Madrid,
    /// Oregon, USA (`us-west-2`) — hydro + gas mix, moderate stress.
    Oregon,
    /// Milan, Italy (`eu-south-1`) — gas-heavy grid.
    Milan,
    /// Mumbai, India (`ap-south-1`) — coal-heavy grid, hot and humid.
    Mumbai,
}

/// All regions, ordered by ascending average carbon intensity (the ordering
/// used on the x-axes of Fig. 2).
pub const ALL_REGIONS: [Region; 5] = [
    Region::Zurich,
    Region::Madrid,
    Region::Oregon,
    Region::Milan,
    Region::Mumbai,
];

impl Region {
    /// Stable dense index (0..5) for array-indexed lookups.
    pub fn index(self) -> usize {
        match self {
            Region::Zurich => 0,
            Region::Madrid => 1,
            Region::Oregon => 2,
            Region::Milan => 3,
            Region::Mumbai => 4,
        }
    }

    /// Inverse of [`Region::index`].
    pub fn from_index(index: usize) -> Option<Region> {
        ALL_REGIONS.get(index).copied()
    }

    /// Short human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Region::Zurich => "Zurich",
            Region::Madrid => "Madrid",
            Region::Oregon => "Oregon",
            Region::Milan => "Milan",
            Region::Mumbai => "Mumbai",
        }
    }

    /// The AWS region identifier used in the paper's testbed.
    pub fn aws_region(self) -> &'static str {
        match self {
            Region::Zurich => "eu-central-2",
            Region::Madrid => "eu-south-2",
            Region::Oregon => "us-west-2",
            Region::Milan => "eu-south-1",
            Region::Mumbai => "ap-south-1",
        }
    }

    /// Static profile (WSF, climate, base energy mix) for this region.
    pub fn profile(self) -> RegionProfile {
        RegionProfile::of(self)
    }

    /// Parse a region from its [`Region::name`] (case-insensitive) or its
    /// [`Region::aws_region`] identifier — the inverse used by the online
    /// placement service's wire format.
    ///
    /// ```
    /// use waterwise_telemetry::Region;
    ///
    /// assert_eq!(Region::from_name("Zurich"), Some(Region::Zurich));
    /// assert_eq!(Region::from_name("mumbai"), Some(Region::Mumbai));
    /// assert_eq!(Region::from_name("us-west-2"), Some(Region::Oregon));
    /// assert_eq!(Region::from_name("atlantis"), None);
    /// ```
    pub fn from_name(name: &str) -> Option<Region> {
        ALL_REGIONS
            .iter()
            .find(|r| r.name().eq_ignore_ascii_case(name) || r.aws_region() == name)
            .copied()
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Climate parameters used by the synthetic wet-bulb temperature model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClimateProfile {
    /// Annual mean wet-bulb temperature (°C).
    pub mean_wet_bulb: f64,
    /// Seasonal (annual) amplitude of the wet-bulb temperature (°C).
    pub seasonal_amplitude: f64,
    /// Diurnal amplitude of the wet-bulb temperature (°C).
    pub diurnal_amplitude: f64,
    /// Day of year (0-based) at which the seasonal peak occurs.
    pub peak_day: f64,
    /// Standard deviation of day-to-day weather noise (°C).
    pub noise_std: f64,
}

/// Static profile of a region: water stress, climate, base energy mix, and
/// the variability knobs used by the synthetic grid model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionProfile {
    /// The region this profile describes.
    pub region: Region,
    /// Water scarcity factor (Fig. 2(d)).
    pub wsf: WaterScarcityFactor,
    /// Climate parameters for the wet-bulb model (drives WUE, Fig. 2(c)).
    pub climate: ClimateProfile,
    /// Annual-average energy mix of the regional grid (drives carbon
    /// intensity, Fig. 2(a), and regional EWIF, Fig. 2(b)).
    pub base_mix: EnergyMix,
    /// Fraction of the solar share that follows the diurnal daylight curve.
    pub solar_variability: f64,
    /// Relative amplitude of slow (multi-day) wind output swings.
    pub wind_variability: f64,
    /// Relative amplitude of seasonal hydro availability swings.
    pub hydro_seasonality: f64,
    /// Relative amplitude of random hour-to-hour mix noise.
    pub mix_noise: f64,
    /// Log-scale amplitude of slow grid-level carbon-intensity swings
    /// (imports/exports, demand, outages). Calibrated so that the generated
    /// series reproduce the wide overlapping ranges of Fig. 2(e)
    /// (e.g. Oregon spanning roughly 30–380 gCO2/kWh over a year).
    pub carbon_volatility: f64,
}

impl RegionProfile {
    /// The built-in profile of a region (values calibrated to reproduce the
    /// orderings of Fig. 2; see `DESIGN.md`).
    pub fn of(region: Region) -> Self {
        match region {
            Region::Zurich => Self {
                region,
                wsf: WaterScarcityFactor::new(0.15),
                climate: ClimateProfile {
                    mean_wet_bulb: 7.5,
                    seasonal_amplitude: 8.5,
                    diurnal_amplitude: 3.5,
                    peak_day: 200.0,
                    noise_std: 1.8,
                },
                base_mix: EnergyMix::new([
                    (EnergySource::Hydro, 0.42),
                    (EnergySource::Nuclear, 0.30),
                    (EnergySource::Biomass, 0.08),
                    (EnergySource::Solar, 0.07),
                    (EnergySource::Wind, 0.08),
                    (EnergySource::Gas, 0.05),
                ]),
                solar_variability: 0.9,
                wind_variability: 0.7,
                hydro_seasonality: 0.4,
                mix_noise: 0.2,
                carbon_volatility: 0.50,
            },
            Region::Madrid => Self {
                region,
                wsf: WaterScarcityFactor::new(0.85),
                climate: ClimateProfile {
                    mean_wet_bulb: 16.5,
                    seasonal_amplitude: 8.0,
                    diurnal_amplitude: 4.5,
                    peak_day: 205.0,
                    noise_std: 1.8,
                },
                base_mix: EnergyMix::new([
                    (EnergySource::Solar, 0.25),
                    (EnergySource::Wind, 0.25),
                    (EnergySource::Nuclear, 0.10),
                    (EnergySource::Gas, 0.30),
                    (EnergySource::Hydro, 0.10),
                ]),
                solar_variability: 0.95,
                wind_variability: 0.9,
                hydro_seasonality: 0.45,
                mix_noise: 0.22,
                carbon_volatility: 0.45,
            },
            Region::Oregon => Self {
                region,
                wsf: WaterScarcityFactor::new(0.50),
                climate: ClimateProfile {
                    mean_wet_bulb: 9.0,
                    seasonal_amplitude: 7.0,
                    diurnal_amplitude: 3.0,
                    peak_day: 210.0,
                    noise_std: 1.6,
                },
                base_mix: EnergyMix::new([
                    (EnergySource::Hydro, 0.35),
                    (EnergySource::Gas, 0.30),
                    (EnergySource::Wind, 0.10),
                    (EnergySource::Solar, 0.15),
                    (EnergySource::Coal, 0.10),
                ]),
                solar_variability: 0.85,
                wind_variability: 0.8,
                hydro_seasonality: 0.6,
                mix_noise: 0.25,
                carbon_volatility: 0.55,
            },
            Region::Milan => Self {
                region,
                wsf: WaterScarcityFactor::new(0.35),
                climate: ClimateProfile {
                    mean_wet_bulb: 12.5,
                    seasonal_amplitude: 9.0,
                    diurnal_amplitude: 4.0,
                    peak_day: 200.0,
                    noise_std: 1.9,
                },
                base_mix: EnergyMix::new([
                    (EnergySource::Gas, 0.50),
                    (EnergySource::Hydro, 0.15),
                    (EnergySource::Solar, 0.12),
                    (EnergySource::Wind, 0.08),
                    (EnergySource::Biomass, 0.05),
                    (EnergySource::Coal, 0.10),
                ]),
                solar_variability: 0.9,
                wind_variability: 0.75,
                hydro_seasonality: 0.45,
                mix_noise: 0.2,
                carbon_volatility: 0.40,
            },
            Region::Mumbai => Self {
                region,
                wsf: WaterScarcityFactor::new(0.70),
                climate: ClimateProfile {
                    mean_wet_bulb: 24.0,
                    seasonal_amplitude: 3.5,
                    diurnal_amplitude: 2.0,
                    peak_day: 140.0,
                    noise_std: 1.2,
                },
                base_mix: EnergyMix::new([
                    (EnergySource::Coal, 0.70),
                    (EnergySource::Gas, 0.12),
                    (EnergySource::Hydro, 0.08),
                    (EnergySource::Solar, 0.06),
                    (EnergySource::Wind, 0.04),
                ]),
                solar_variability: 0.9,
                wind_variability: 0.6,
                hydro_seasonality: 0.5,
                mix_noise: 0.12,
                carbon_volatility: 0.18,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waterwise_sustain::EwifDataset;

    #[test]
    fn indexes_roundtrip() {
        for (i, r) in ALL_REGIONS.iter().enumerate() {
            assert_eq!(r.index(), i);
            assert_eq!(Region::from_index(i), Some(*r));
        }
        assert_eq!(Region::from_index(99), None);
    }

    #[test]
    fn regions_are_sorted_by_carbon_intensity() {
        // Fig. 2(a): Zurich < Madrid < Oregon < Milan < Mumbai.
        let cis: Vec<f64> = ALL_REGIONS
            .iter()
            .map(|r| r.profile().base_mix.carbon_intensity().value())
            .collect();
        for w in cis.windows(2) {
            assert!(w[0] < w[1], "carbon intensity ordering violated: {cis:?}");
        }
    }

    #[test]
    fn zurich_has_lowest_carbon_but_highest_ewif() {
        // The carbon/water tension of Observation 2.
        let zurich = Region::Zurich.profile();
        let mumbai = Region::Mumbai.profile();
        assert!(
            zurich.base_mix.carbon_intensity().value()
                < mumbai.base_mix.carbon_intensity().value() / 5.0
        );
        assert!(
            zurich.base_mix.ewif(EwifDataset::Primary).value()
                > mumbai.base_mix.ewif(EwifDataset::Primary).value() * 2.0
        );
    }

    #[test]
    fn madrid_and_mumbai_are_water_stressed() {
        // Fig. 2(d): Madrid and Mumbai have the highest WSF.
        assert!(Region::Madrid.profile().wsf.value() > 0.6);
        assert!(Region::Mumbai.profile().wsf.value() > 0.6);
        assert!(Region::Zurich.profile().wsf.value() < 0.3);
    }

    #[test]
    fn mumbai_is_hot_and_humid() {
        let mumbai = Region::Mumbai.profile();
        let zurich = Region::Zurich.profile();
        assert!(mumbai.climate.mean_wet_bulb > zurich.climate.mean_wet_bulb + 10.0);
    }

    #[test]
    fn names_and_aws_regions_are_distinct() {
        let mut names: Vec<_> = ALL_REGIONS.iter().map(|r| r.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 5);
        let mut aws: Vec<_> = ALL_REGIONS.iter().map(|r| r.aws_region()).collect();
        aws.sort_unstable();
        aws.dedup();
        assert_eq!(aws.len(), 5);
    }

    #[test]
    fn profiles_have_normalized_mixes() {
        for r in ALL_REGIONS {
            let total: f64 = r.profile().base_mix.shares().map(|(_, s)| s).sum();
            assert!((total - 1.0).abs() < 1e-9, "{r}: {total}");
        }
    }
}
