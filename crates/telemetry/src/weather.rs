//! Synthetic wet-bulb temperature model.
//!
//! WUE (and hence the onsite water footprint) is driven by the wet-bulb
//! temperature at the data-center site. The paper pulls hourly observations
//! from Meteologix; here we generate a seeded synthetic series with the same
//! structure: an annual seasonal cycle, a diurnal cycle, and auto-correlated
//! day-to-day noise.

use crate::region::ClimateProfile;
use crate::series::HourlySeries;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::f64::consts::TAU;

/// Synthetic weather (wet-bulb temperature) model for one region.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeatherModel {
    climate: ClimateProfile,
    seed: u64,
}

impl WeatherModel {
    /// Build a model from a climate profile and a seed.
    pub fn new(climate: ClimateProfile, seed: u64) -> Self {
        Self { climate, seed }
    }

    /// Deterministic wet-bulb temperature (°C) at an hour offset from the
    /// start of the simulated year, excluding noise.
    pub fn deterministic_wet_bulb(&self, hour: usize) -> f64 {
        let day = (hour / 24) as f64;
        let hour_of_day = (hour % 24) as f64;
        let seasonal =
            self.climate.seasonal_amplitude * (TAU * (day - self.climate.peak_day) / 365.0).cos();
        // Diurnal peak mid-afternoon (15:00), trough just before dawn.
        let diurnal = self.climate.diurnal_amplitude * (TAU * (hour_of_day - 15.0) / 24.0).cos();
        self.climate.mean_wet_bulb + seasonal + diurnal
    }

    /// Generate an hourly wet-bulb series of the given length. Noise is an
    /// AR(1) process refreshed daily so consecutive days are correlated, the
    /// way real weather is.
    pub fn generate(&self, hours: usize) -> HourlySeries {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x5eed_11aa_77ee_0001);
        let days = hours / 24 + 2;
        let mut daily_noise = Vec::with_capacity(days);
        let mut level: f64 = 0.0;
        for _ in 0..days {
            let shock: f64 = rng.gen_range(-1.0..1.0) * self.climate.noise_std;
            level = 0.7 * level + shock;
            daily_noise.push(level);
        }
        HourlySeries::generate(hours, |hour| {
            let noise = daily_noise[hour / 24];
            self.deterministic_wet_bulb(hour) + noise
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::{Region, ALL_REGIONS};

    fn model(region: Region, seed: u64) -> WeatherModel {
        WeatherModel::new(region.profile().climate, seed)
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let a = model(Region::Oregon, 7).generate(24 * 30);
        let b = model(Region::Oregon, 7).generate(24 * 30);
        let c = model(Region::Oregon, 8).generate(24 * 30);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn mumbai_is_warmer_than_zurich_on_average() {
        let mumbai = model(Region::Mumbai, 1).generate(24 * 365);
        let zurich = model(Region::Zurich, 1).generate(24 * 365);
        assert!(mumbai.mean() > zurich.mean() + 10.0);
    }

    #[test]
    fn seasonal_cycle_is_visible() {
        let m = model(Region::Zurich, 3);
        // Mid-July (day ~200) should be much warmer than mid-January (day ~15).
        let summer = m.deterministic_wet_bulb(200 * 24 + 12);
        let winter = m.deterministic_wet_bulb(15 * 24 + 12);
        assert!(summer > winter + 5.0);
    }

    #[test]
    fn diurnal_cycle_is_visible() {
        let m = model(Region::Madrid, 3);
        let afternoon = m.deterministic_wet_bulb(100 * 24 + 15);
        let night = m.deterministic_wet_bulb(100 * 24 + 3);
        assert!(afternoon > night);
    }

    #[test]
    fn all_regions_generate_finite_values() {
        for r in ALL_REGIONS {
            let s = model(r, 42).generate(24 * 10);
            assert!(s.values().iter().all(|v| v.is_finite()));
        }
    }
}
