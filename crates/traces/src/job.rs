//! The per-job record consumed by the simulator and schedulers.

use crate::workload::Benchmark;
use serde::{Deserialize, Serialize};
use std::fmt;
use waterwise_sustain::{KilowattHours, Seconds};
use waterwise_telemetry::Region;

/// A unique job identifier within a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// One job in a workload trace.
///
/// The scheduler only ever sees the *estimated* execution time and energy
/// (mean estimates "from their previous executions", per the paper, which
/// can be inaccurate); the simulator charges the *actual* values when the
/// job runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Unique id.
    pub id: JobId,
    /// Which benchmark the job runs.
    pub benchmark: Benchmark,
    /// Simulation time at which the job is submitted.
    pub submit_time: Seconds,
    /// The region where the user submitted the job.
    pub home_region: Region,
    /// Actual execution time (unknown to the scheduler).
    pub actual_execution_time: Seconds,
    /// Actual IT energy (unknown to the scheduler).
    pub actual_energy: KilowattHours,
    /// Execution-time estimate available to the scheduler.
    pub estimated_execution_time: Seconds,
    /// Energy estimate available to the scheduler.
    pub estimated_energy: KilowattHours,
    /// Size of the execution package transferred on migration (bytes).
    pub package_bytes: u64,
}

impl JobSpec {
    /// Relative error of the scheduler's execution-time estimate.
    pub fn estimate_error(&self) -> f64 {
        if self.actual_execution_time.value() <= 0.0 {
            return 0.0;
        }
        (self.estimated_execution_time.value() - self.actual_execution_time.value()).abs()
            / self.actual_execution_time.value()
    }

    /// The latest completion time that satisfies a delay tolerance of
    /// `tolerance` (e.g. `0.25` for 25%): the job's service time
    /// (completion − submission) may not exceed `(1 + tolerance) ×
    /// actual_execution_time`.
    pub fn deadline(&self, tolerance: f64) -> Seconds {
        Seconds::new(
            self.submit_time.value()
                + (1.0 + tolerance.max(0.0)) * self.actual_execution_time.value(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job() -> JobSpec {
        JobSpec {
            id: JobId(7),
            benchmark: Benchmark::Canneal,
            submit_time: Seconds::new(100.0),
            home_region: Region::Oregon,
            actual_execution_time: Seconds::new(600.0),
            actual_energy: KilowattHours::new(0.05),
            estimated_execution_time: Seconds::new(660.0),
            estimated_energy: KilowattHours::new(0.055),
            package_bytes: 1024,
        }
    }

    #[test]
    fn estimate_error_is_relative() {
        let j = job();
        assert!((j.estimate_error() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn deadline_reflects_tolerance() {
        let j = job();
        assert!((j.deadline(0.25).value() - (100.0 + 1.25 * 600.0)).abs() < 1e-9);
        // Negative tolerances are treated as zero.
        assert!((j.deadline(-1.0).value() - 700.0).abs() < 1e-9);
    }

    #[test]
    fn display_of_job_id() {
        assert_eq!(JobId(3).to_string(), "job-3");
    }
}
