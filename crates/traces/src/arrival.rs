//! Arrival processes: Borg-like and Alibaba-like job submission patterns.
//!
//! The Google Borg trace used in the paper exhibits a strong diurnal cycle
//! and bursty submissions (users submit batches of related jobs together).
//! The Alibaba VM trace has an ≈8.5× higher invocation rate with a flatter
//! profile. Both are modeled as doubly-stochastic processes: a deterministic
//! diurnal base rate modulated by an auto-correlated burst factor, sampled
//! with exponential inter-arrival gaps.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::f64::consts::TAU;
use waterwise_sustain::Seconds;

/// Which production trace the generator mimics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum TraceKind {
    /// Google Borg cluster trace: ~230 000 jobs over 10 days (~0.27 jobs/s),
    /// strong diurnal cycle, bursty.
    #[default]
    BorgLike,
    /// Alibaba VM trace: ≈8.5× the Borg invocation rate, flatter diurnal
    /// profile, smaller bursts.
    AlibabaLike,
}

impl TraceKind {
    /// Mean arrival rate in jobs per second (before any rate multiplier).
    pub fn base_rate(self) -> f64 {
        match self {
            // 230k jobs / 10 days ≈ 0.266 jobs/s.
            TraceKind::BorgLike => 230_000.0 / (10.0 * 86_400.0),
            // The paper reports an 8.5× higher invocation rate.
            TraceKind::AlibabaLike => 8.5 * 230_000.0 / (10.0 * 86_400.0),
        }
    }

    /// Relative amplitude of the diurnal cycle (0 = flat).
    pub fn diurnal_amplitude(self) -> f64 {
        match self {
            TraceKind::BorgLike => 0.45,
            TraceKind::AlibabaLike => 0.25,
        }
    }

    /// Burstiness: relative amplitude of the slow random modulation.
    pub fn burstiness(self) -> f64 {
        match self {
            TraceKind::BorgLike => 0.6,
            TraceKind::AlibabaLike => 0.35,
        }
    }

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            TraceKind::BorgLike => "google-borg",
            TraceKind::AlibabaLike => "alibaba-vm",
        }
    }
}

/// A seeded arrival-time generator.
#[derive(Debug, Clone)]
pub struct ArrivalModel {
    kind: TraceKind,
    rate_multiplier: f64,
    rng: StdRng,
    burst_level: f64,
    current_time: f64,
}

impl ArrivalModel {
    /// Create an arrival model. `rate_multiplier` scales the base rate (the
    /// paper's "request rates double" study uses 2.0).
    pub fn new(kind: TraceKind, rate_multiplier: f64, seed: u64) -> Self {
        Self {
            kind,
            rate_multiplier: rate_multiplier.max(1e-6),
            rng: StdRng::seed_from_u64(seed ^ 0xA221_7AC0_0001),
            burst_level: 0.0,
            current_time: 0.0,
        }
    }

    /// Instantaneous arrival rate (jobs/s) at a given simulation time.
    pub fn rate_at(&self, time: Seconds) -> f64 {
        let hour_of_day = (time.value() / 3600.0) % 24.0;
        let diurnal =
            1.0 + self.kind.diurnal_amplitude() * (TAU * (hour_of_day - 14.0) / 24.0).cos();
        let burst = (1.0 + self.kind.burstiness() * self.burst_level).max(0.05);
        self.kind.base_rate() * self.rate_multiplier * diurnal * burst
    }

    /// Draw the next arrival time (strictly increasing).
    pub fn next_arrival(&mut self) -> Seconds {
        // Refresh the burst level roughly every draw with slow mixing so that
        // bursts persist across several arrivals.
        let shock: f64 = self.rng.gen_range(-1.0f64..1.0);
        self.burst_level = 0.95 * self.burst_level + 0.31 * shock;
        let rate = self.rate_at(Seconds::new(self.current_time)).max(1e-9);
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let gap = -u.ln() / rate;
        self.current_time += gap;
        Seconds::new(self.current_time)
    }

    /// Generate all arrivals within `duration`.
    pub fn arrivals_within(&mut self, duration: Seconds) -> Vec<Seconds> {
        let mut out = Vec::new();
        loop {
            let t = self.next_arrival();
            if t.value() > duration.value() {
                break;
            }
            out.push(t);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_times_are_strictly_increasing() {
        let mut m = ArrivalModel::new(TraceKind::BorgLike, 1.0, 3);
        let mut prev = 0.0;
        for _ in 0..500 {
            let t = m.next_arrival().value();
            assert!(t > prev);
            prev = t;
        }
    }

    #[test]
    fn borg_rate_is_roughly_a_quarter_job_per_second() {
        let rate = TraceKind::BorgLike.base_rate();
        assert!(rate > 0.2 && rate < 0.35, "rate {rate}");
    }

    #[test]
    fn alibaba_is_about_8_5x_denser() {
        let ratio = TraceKind::AlibabaLike.base_rate() / TraceKind::BorgLike.base_rate();
        assert!((ratio - 8.5).abs() < 1e-9);
        let mut borg = ArrivalModel::new(TraceKind::BorgLike, 1.0, 7);
        let mut ali = ArrivalModel::new(TraceKind::AlibabaLike, 1.0, 7);
        let day = Seconds::from_hours(24.0);
        let nb = borg.arrivals_within(day).len();
        let na = ali.arrivals_within(day).len();
        assert!(na > 5 * nb, "alibaba {na} vs borg {nb}");
    }

    #[test]
    fn rate_multiplier_scales_the_count() {
        let day = Seconds::from_hours(24.0);
        let n1 = ArrivalModel::new(TraceKind::BorgLike, 1.0, 9)
            .arrivals_within(day)
            .len();
        let n2 = ArrivalModel::new(TraceKind::BorgLike, 2.0, 9)
            .arrivals_within(day)
            .len();
        let ratio = n2 as f64 / n1 as f64;
        assert!(ratio > 1.6 && ratio < 2.4, "ratio {ratio}");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = ArrivalModel::new(TraceKind::BorgLike, 1.0, 42)
            .arrivals_within(Seconds::from_hours(6.0));
        let b = ArrivalModel::new(TraceKind::BorgLike, 1.0, 42)
            .arrivals_within(Seconds::from_hours(6.0));
        let c = ArrivalModel::new(TraceKind::BorgLike, 1.0, 43)
            .arrivals_within(Seconds::from_hours(6.0));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn diurnal_cycle_changes_the_rate() {
        let m = ArrivalModel::new(TraceKind::BorgLike, 1.0, 1);
        let afternoon = m.rate_at(Seconds::from_hours(14.0));
        let night = m.rate_at(Seconds::from_hours(2.0));
        assert!(afternoon > night);
    }
}
