//! The PARSEC and CloudSuite benchmarks used in the paper (Table 1) and
//! their profiled resource characteristics.
//!
//! The paper profiles each benchmark on AWS `m5.metal` bare-metal nodes with
//! Likwid/RAPL; the profile table below plays the role of that measurement
//! database. Mean execution time and power are loosely calibrated to
//! published numbers for these suites on large x86 servers; what matters for
//! the scheduler is that jobs span roughly two orders of magnitude in length
//! and energy.

use serde::{Deserialize, Serialize};
use std::fmt;
use waterwise_sustain::{KilowattHours, Seconds, Watts};

/// One of the ten evaluated benchmarks (Table 1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Benchmark {
    /// PARSEC `dedup` — data compression / deduplication pipeline.
    Dedup,
    /// PARSEC `netdedup` — dedup with a network stack front-end.
    Netdedup,
    /// PARSEC `canneal` — simulated annealing for chip routing.
    Canneal,
    /// PARSEC `blackscholes` — option pricing.
    Blackscholes,
    /// PARSEC `swaptions` — portfolio pricing with Monte-Carlo simulation.
    Swaptions,
    /// CloudSuite data caching (memcached-style).
    DataCaching,
    /// CloudSuite graph analytics.
    GraphAnalytics,
    /// CloudSuite web serving.
    WebServing,
    /// CloudSuite in-memory analytics.
    MemoryAnalytics,
    /// CloudSuite media streaming.
    MediaStreaming,
}

/// All benchmarks, PARSEC first, in Table-1 order.
pub const ALL_BENCHMARKS: [Benchmark; 10] = [
    Benchmark::Dedup,
    Benchmark::Netdedup,
    Benchmark::Canneal,
    Benchmark::Blackscholes,
    Benchmark::Swaptions,
    Benchmark::DataCaching,
    Benchmark::GraphAnalytics,
    Benchmark::WebServing,
    Benchmark::MemoryAnalytics,
    Benchmark::MediaStreaming,
];

impl Benchmark {
    /// Stable dense index (0..10).
    pub fn index(self) -> usize {
        ALL_BENCHMARKS.iter().position(|&b| b == self).unwrap()
    }

    /// Parse a benchmark from its [`Benchmark::name`] (case-insensitive) —
    /// the inverse used by the online placement service's wire format.
    ///
    /// ```
    /// use waterwise_traces::Benchmark;
    ///
    /// assert_eq!(Benchmark::from_name("canneal"), Some(Benchmark::Canneal));
    /// assert_eq!(Benchmark::from_name("Data-Caching"), Some(Benchmark::DataCaching));
    /// assert_eq!(Benchmark::from_name("sorting"), None);
    /// ```
    pub fn from_name(name: &str) -> Option<Benchmark> {
        ALL_BENCHMARKS
            .iter()
            .find(|b| b.name().eq_ignore_ascii_case(name))
            .copied()
    }

    /// Short name as used in Table 1.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Dedup => "dedup",
            Benchmark::Netdedup => "netdedup",
            Benchmark::Canneal => "canneal",
            Benchmark::Blackscholes => "blackscholes",
            Benchmark::Swaptions => "swaptions",
            Benchmark::DataCaching => "data-caching",
            Benchmark::GraphAnalytics => "graph-analytics",
            Benchmark::WebServing => "web-serving",
            Benchmark::MemoryAnalytics => "memory-analytics",
            Benchmark::MediaStreaming => "media-streaming",
        }
    }

    /// `true` for the PARSEC benchmarks, `false` for CloudSuite.
    pub fn is_parsec(self) -> bool {
        matches!(
            self,
            Benchmark::Dedup
                | Benchmark::Netdedup
                | Benchmark::Canneal
                | Benchmark::Blackscholes
                | Benchmark::Swaptions
        )
    }

    /// The profiled characteristics of this benchmark.
    pub fn profile(self) -> WorkloadProfile {
        let (exec_s, power_w, package_mb) = match self {
            Benchmark::Dedup => (220.0, 320.0, 350.0),
            Benchmark::Netdedup => (260.0, 335.0, 380.0),
            Benchmark::Canneal => (640.0, 295.0, 220.0),
            Benchmark::Blackscholes => (310.0, 255.0, 150.0),
            Benchmark::Swaptions => (420.0, 285.0, 160.0),
            Benchmark::DataCaching => (930.0, 350.0, 750.0),
            Benchmark::GraphAnalytics => (1850.0, 385.0, 1400.0),
            Benchmark::WebServing => (1150.0, 310.0, 900.0),
            Benchmark::MemoryAnalytics => (1500.0, 405.0, 1200.0),
            Benchmark::MediaStreaming => (1020.0, 345.0, 1600.0),
        };
        WorkloadProfile {
            benchmark: self,
            mean_execution_time: Seconds::new(exec_s),
            mean_power: Watts::new(power_w),
            package_bytes: (package_mb * 1024.0 * 1024.0) as u64,
            execution_time_cv: 0.15,
            estimate_error_cv: 0.10,
        }
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Profiled characteristics of one benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Which benchmark this profile describes.
    pub benchmark: Benchmark,
    /// Mean wall-clock execution time on one m5.metal-class server.
    pub mean_execution_time: Seconds,
    /// Mean power draw while running.
    pub mean_power: Watts,
    /// Size of the compressed execution package (`.tar`) transferred between
    /// regions when the job is migrated.
    pub package_bytes: u64,
    /// Coefficient of variation of the actual execution time across
    /// instances of this benchmark.
    pub execution_time_cv: f64,
    /// Coefficient of variation of the *scheduler's estimate* relative to
    /// the actual value (the paper notes these estimates "can be
    /// inaccurate").
    pub estimate_error_cv: f64,
}

impl WorkloadProfile {
    /// Mean IT energy of one run (kWh).
    pub fn mean_energy(&self) -> KilowattHours {
        self.mean_power.energy_over(self.mean_execution_time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_distinct_benchmarks() {
        let mut names: Vec<_> = ALL_BENCHMARKS.iter().map(|b| b.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 10);
    }

    #[test]
    fn indexes_are_dense_and_stable() {
        for (i, b) in ALL_BENCHMARKS.iter().enumerate() {
            assert_eq!(b.index(), i);
        }
    }

    #[test]
    fn parsec_cloudsuite_split_is_five_five() {
        let parsec = ALL_BENCHMARKS.iter().filter(|b| b.is_parsec()).count();
        assert_eq!(parsec, 5);
    }

    #[test]
    fn profiles_are_physical() {
        for b in ALL_BENCHMARKS {
            let p = b.profile();
            assert!(p.mean_execution_time.value() > 60.0);
            assert!(p.mean_execution_time.value() < 4.0 * 3600.0);
            assert!(p.mean_power.value() > 100.0 && p.mean_power.value() < 800.0);
            assert!(p.package_bytes > 10 * 1024 * 1024);
            assert!(p.mean_energy().value() > 0.0);
        }
    }

    #[test]
    fn cloudsuite_jobs_are_longer_than_parsec_on_average() {
        let parsec_mean: f64 = ALL_BENCHMARKS
            .iter()
            .filter(|b| b.is_parsec())
            .map(|b| b.profile().mean_execution_time.value())
            .sum::<f64>()
            / 5.0;
        let cloud_mean: f64 = ALL_BENCHMARKS
            .iter()
            .filter(|b| !b.is_parsec())
            .map(|b| b.profile().mean_execution_time.value())
            .sum::<f64>()
            / 5.0;
        assert!(cloud_mean > parsec_mean * 2.0);
    }

    #[test]
    fn energy_is_power_times_time() {
        let p = Benchmark::GraphAnalytics.profile();
        let expected = p.mean_power.value() * p.mean_execution_time.value() / 3600.0 / 1000.0;
        assert!((p.mean_energy().value() - expected).abs() < 1e-9);
    }
}
