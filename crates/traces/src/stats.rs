//! Summary statistics of a generated trace, used in tests and experiment
//! logs.

use crate::job::JobSpec;
use serde::{Deserialize, Serialize};
use waterwise_sustain::{KilowattHours, Seconds};
use waterwise_telemetry::ALL_REGIONS;

/// Aggregate statistics of a trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceStatistics {
    /// Number of jobs.
    pub job_count: usize,
    /// Trace duration spanned by submissions.
    pub span: Seconds,
    /// Mean inter-arrival gap.
    pub mean_interarrival: Seconds,
    /// Mean actual execution time.
    pub mean_execution_time: Seconds,
    /// Total IT energy of all jobs.
    pub total_energy: KilowattHours,
    /// Number of jobs per home region (indexed by [`waterwise_telemetry::Region::index`]).
    pub jobs_per_region: [usize; 5],
}

impl TraceStatistics {
    /// Compute statistics over a trace (assumed sorted by submit time).
    pub fn compute(jobs: &[JobSpec]) -> Self {
        if jobs.is_empty() {
            return Self {
                job_count: 0,
                span: Seconds::zero(),
                mean_interarrival: Seconds::zero(),
                mean_execution_time: Seconds::zero(),
                total_energy: KilowattHours::zero(),
                jobs_per_region: [0; 5],
            };
        }
        let first = jobs.first().unwrap().submit_time.value();
        let last = jobs.last().unwrap().submit_time.value();
        let span = (last - first).max(0.0);
        let mut per_region = [0usize; 5];
        for j in jobs {
            per_region[j.home_region.index()] += 1;
        }
        Self {
            job_count: jobs.len(),
            span: Seconds::new(span),
            mean_interarrival: Seconds::new(if jobs.len() > 1 {
                span / (jobs.len() - 1) as f64
            } else {
                0.0
            }),
            mean_execution_time: Seconds::new(
                jobs.iter()
                    .map(|j| j.actual_execution_time.value())
                    .sum::<f64>()
                    / jobs.len() as f64,
            ),
            total_energy: jobs.iter().map(|j| j.actual_energy).sum(),
            jobs_per_region: per_region,
        }
    }

    /// Average arrival rate in jobs per second.
    pub fn arrival_rate(&self) -> f64 {
        if self.span.value() <= 0.0 {
            0.0
        } else {
            self.job_count as f64 / self.span.value()
        }
    }

    /// Fraction of jobs submitted from each region.
    pub fn region_fractions(&self) -> [f64; 5] {
        let mut out = [0.0; 5];
        if self.job_count == 0 {
            return out;
        }
        for r in ALL_REGIONS {
            out[r.index()] = self.jobs_per_region[r.index()] as f64 / self.job_count as f64;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{TraceConfig, TraceGenerator};

    #[test]
    fn empty_trace_statistics_are_zero() {
        let s = TraceStatistics::compute(&[]);
        assert_eq!(s.job_count, 0);
        assert_eq!(s.arrival_rate(), 0.0);
        assert_eq!(s.region_fractions(), [0.0; 5]);
    }

    #[test]
    fn statistics_match_the_generated_trace() {
        let jobs = TraceGenerator::new(TraceConfig::borg(0.3, 4)).generate();
        let s = TraceStatistics::compute(&jobs);
        assert_eq!(s.job_count, jobs.len());
        assert!(s.mean_execution_time.value() > 100.0);
        assert!(s.total_energy.value() > 0.0);
        assert!(s.arrival_rate() > 0.05);
        let fractions: f64 = s.region_fractions().iter().sum();
        assert!((fractions - 1.0).abs() < 1e-9);
    }

    #[test]
    fn region_fractions_are_roughly_uniform_by_default() {
        let jobs = TraceGenerator::new(TraceConfig::borg(1.0, 8)).generate();
        let s = TraceStatistics::compute(&jobs);
        for f in s.region_fractions() {
            assert!(f > 0.1 && f < 0.3, "fraction {f}");
        }
    }
}
