//! End-to-end trace generation: arrivals × benchmark mix × home regions ×
//! per-instance jitter.

use crate::arrival::{ArrivalModel, TraceKind};
use crate::job::{JobId, JobSpec};
use crate::workload::{Benchmark, ALL_BENCHMARKS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use waterwise_sustain::{KilowattHours, Seconds, Watts};
use waterwise_telemetry::{Region, ALL_REGIONS};

/// Configuration for trace generation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Which production trace to mimic.
    pub kind: TraceKind,
    /// Simulated duration of the trace.
    pub duration: Seconds,
    /// Multiplier on the base arrival rate (2.0 reproduces the "request
    /// rates double" robustness study).
    pub rate_multiplier: f64,
    /// RNG seed.
    pub seed: u64,
    /// Relative weight of each home region (indexed by [`Region::index`]);
    /// defaults to uniform. Regions not being simulated can be given weight 0.
    pub region_weights: [f64; 5],
    /// Restrict generation to these benchmarks (defaults to all ten).
    pub benchmarks: Vec<Benchmark>,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            kind: TraceKind::BorgLike,
            duration: Seconds::from_hours(24.0),
            rate_multiplier: 1.0,
            seed: 0xB0_46_7A_CE,
            region_weights: [1.0; 5],
            benchmarks: ALL_BENCHMARKS.to_vec(),
        }
    }
}

impl TraceConfig {
    /// A Borg-like trace of the given number of days.
    pub fn borg(days: f64, seed: u64) -> Self {
        Self {
            kind: TraceKind::BorgLike,
            duration: Seconds::from_hours(days * 24.0),
            seed,
            ..Self::default()
        }
    }

    /// An Alibaba-like trace of the given number of days.
    pub fn alibaba(days: f64, seed: u64) -> Self {
        Self {
            kind: TraceKind::AlibabaLike,
            duration: Seconds::from_hours(days * 24.0),
            seed,
            ..Self::default()
        }
    }

    /// Restrict the home regions to a subset (other weights become 0).
    pub fn with_regions(mut self, regions: &[Region]) -> Self {
        self.region_weights = [0.0; 5];
        for r in regions {
            self.region_weights[r.index()] = 1.0;
        }
        self
    }

    /// Override the arrival-rate multiplier.
    pub fn with_rate_multiplier(mut self, multiplier: f64) -> Self {
        self.rate_multiplier = multiplier;
        self
    }
}

/// Generates [`JobSpec`] traces from a [`TraceConfig`].
///
/// ```
/// use waterwise_traces::{TraceConfig, TraceGenerator};
///
/// // One hour of Borg-like arrivals; seeded, so the trace is reproducible.
/// let jobs = TraceGenerator::new(TraceConfig::borg(1.0 / 24.0, 42)).generate();
/// assert!(!jobs.is_empty());
/// assert!(jobs.windows(2).all(|w| w[0].submit_time <= w[1].submit_time));
/// let again = TraceGenerator::new(TraceConfig::borg(1.0 / 24.0, 42)).generate();
/// assert_eq!(jobs, again);
/// ```
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    config: TraceConfig,
}

impl TraceGenerator {
    /// Create a generator.
    pub fn new(config: TraceConfig) -> Self {
        Self { config }
    }

    /// The configuration this generator uses.
    pub fn config(&self) -> &TraceConfig {
        &self.config
    }

    /// Generate the full trace, sorted by submission time.
    pub fn generate(&self) -> Vec<JobSpec> {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x7AC3_0001_4E4E);
        let mut arrivals = ArrivalModel::new(cfg.kind, cfg.rate_multiplier, cfg.seed);
        let times = arrivals.arrivals_within(cfg.duration);

        let benchmarks = if cfg.benchmarks.is_empty() {
            ALL_BENCHMARKS.to_vec()
        } else {
            cfg.benchmarks.clone()
        };
        let total_weight: f64 = cfg.region_weights.iter().sum();
        assert!(
            total_weight > 0.0,
            "at least one region weight must be positive"
        );

        times
            .into_iter()
            .enumerate()
            .map(|(i, submit_time)| {
                let benchmark = benchmarks[rng.gen_range(0..benchmarks.len())];
                let profile = benchmark.profile();
                let home_region = Self::sample_region(&mut rng, &cfg.region_weights, total_weight);
                // Actual execution time: log-normal-ish jitter around the mean.
                let exec_jitter = sample_lognormal(&mut rng, profile.execution_time_cv);
                let actual_execution_time =
                    Seconds::new(profile.mean_execution_time.value() * exec_jitter);
                let power_jitter = 1.0 + rng.gen_range(-0.05f64..0.05);
                let actual_energy = Watts::new(profile.mean_power.value() * power_jitter)
                    .energy_over(actual_execution_time);
                // The scheduler's estimates: the profiled mean, perturbed.
                let estimate_jitter = sample_lognormal(&mut rng, profile.estimate_error_cv);
                let estimated_execution_time =
                    Seconds::new(profile.mean_execution_time.value() * estimate_jitter);
                let estimated_energy = KilowattHours::new(
                    profile.mean_energy().value()
                        * sample_lognormal(&mut rng, profile.estimate_error_cv),
                );
                JobSpec {
                    id: JobId(i as u64),
                    benchmark,
                    submit_time,
                    home_region,
                    actual_execution_time,
                    actual_energy,
                    estimated_execution_time,
                    estimated_energy,
                    package_bytes: profile.package_bytes,
                }
            })
            .collect()
    }

    fn sample_region(rng: &mut StdRng, weights: &[f64; 5], total: f64) -> Region {
        let mut pick = rng.gen_range(0.0..total);
        for (i, w) in weights.iter().enumerate() {
            if pick < *w {
                return ALL_REGIONS[i];
            }
            pick -= w;
        }
        *ALL_REGIONS.last().unwrap()
    }
}

/// A cheap log-normal-ish multiplicative jitter with the given coefficient of
/// variation, implemented as `exp(N(0, cv))` approximated by the sum of
/// uniform draws (avoids pulling in a distributions crate).
fn sample_lognormal(rng: &mut StdRng, cv: f64) -> f64 {
    // Sum of 4 uniforms in [-1, 1] has std ~= 1.155; scale to unit std.
    let z: f64 = (0..4).map(|_| rng.gen_range(-1.0f64..1.0)).sum::<f64>() / 1.1547;
    (z * cv).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_sorted_and_ids_are_unique() {
        let jobs = TraceGenerator::new(TraceConfig::borg(0.5, 1)).generate();
        assert!(!jobs.is_empty());
        for w in jobs.windows(2) {
            assert!(w[0].submit_time.value() <= w[1].submit_time.value());
            assert!(w[0].id != w[1].id);
        }
    }

    #[test]
    fn borg_daily_volume_matches_the_paper_scale() {
        // ~230k jobs over 10 days ⇒ ~23k per day (±40% for burstiness).
        let jobs = TraceGenerator::new(TraceConfig::borg(1.0, 5)).generate();
        let n = jobs.len() as f64;
        assert!(n > 14_000.0 && n < 34_000.0, "jobs per day {n}");
    }

    #[test]
    fn alibaba_is_much_denser_than_borg() {
        let borg = TraceGenerator::new(TraceConfig::borg(0.25, 3))
            .generate()
            .len();
        let ali = TraceGenerator::new(TraceConfig::alibaba(0.25, 3))
            .generate()
            .len();
        assert!(
            ali as f64 > 5.0 * borg as f64,
            "alibaba {ali} vs borg {borg}"
        );
    }

    #[test]
    fn region_restriction_is_respected() {
        let cfg = TraceConfig::borg(0.2, 9).with_regions(&[Region::Zurich, Region::Mumbai]);
        let jobs = TraceGenerator::new(cfg).generate();
        assert!(jobs
            .iter()
            .all(|j| j.home_region == Region::Zurich || j.home_region == Region::Mumbai));
        assert!(jobs.iter().any(|j| j.home_region == Region::Zurich));
        assert!(jobs.iter().any(|j| j.home_region == Region::Mumbai));
    }

    #[test]
    fn all_regions_appear_with_uniform_weights() {
        let jobs = TraceGenerator::new(TraceConfig::borg(0.5, 11)).generate();
        for r in ALL_REGIONS {
            assert!(jobs.iter().any(|j| j.home_region == r), "missing {r}");
        }
    }

    #[test]
    fn estimates_are_close_but_not_exact() {
        let jobs = TraceGenerator::new(TraceConfig::borg(0.2, 13)).generate();
        let mean_err: f64 =
            jobs.iter().map(|j| j.estimate_error()).sum::<f64>() / jobs.len() as f64;
        assert!(mean_err > 0.01, "estimates should be noisy, err {mean_err}");
        assert!(
            mean_err < 0.6,
            "estimates should be in the right ballpark, err {mean_err}"
        );
    }

    #[test]
    fn determinism_per_seed() {
        let a = TraceGenerator::new(TraceConfig::borg(0.1, 21)).generate();
        let b = TraceGenerator::new(TraceConfig::borg(0.1, 21)).generate();
        let c = TraceGenerator::new(TraceConfig::borg(0.1, 22)).generate();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn rate_multiplier_doubles_volume() {
        let base = TraceGenerator::new(TraceConfig::borg(0.25, 31))
            .generate()
            .len() as f64;
        let doubled = TraceGenerator::new(TraceConfig::borg(0.25, 31).with_rate_multiplier(2.0))
            .generate()
            .len() as f64;
        let ratio = doubled / base;
        assert!(ratio > 1.6 && ratio < 2.4, "ratio {ratio}");
    }

    #[test]
    fn energies_scale_with_execution_time() {
        let jobs = TraceGenerator::new(TraceConfig::borg(0.1, 17)).generate();
        for j in jobs {
            let implied_power =
                j.actual_energy.value() * 3600.0 * 1000.0 / j.actual_execution_time.value();
            assert!(
                implied_power > 100.0 && implied_power < 900.0,
                "power {implied_power}"
            );
        }
    }
}
