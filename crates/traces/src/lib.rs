//! # waterwise-traces
//!
//! Workload traces for the WaterWise evaluation.
//!
//! The paper drives its testbed with job inter-arrivals from the Google Borg
//! cluster trace (10 days, ~230 000 jobs) and, for a robustness study, the
//! Alibaba VM trace (≈ 8.5× higher invocation rate), executing PARSEC and
//! CloudSuite benchmarks whose execution time and energy were profiled on
//! AWS `m5.metal` machines.
//!
//! Neither trace nor the profiling data ships with this repository, so this
//! crate generates *synthetic but statistically similar* traces:
//!
//! * [`workload`] — the ten PARSEC/CloudSuite benchmarks and their profiled
//!   mean execution time, power draw, and package size (Table 1).
//! * [`job`] — the per-job record consumed by the simulator and schedulers,
//!   including the *estimated* execution time / energy the scheduler sees
//!   (mean estimates from prior runs, deliberately noisy) and the *actual*
//!   values the simulator charges.
//! * [`arrival`] — Borg-like (bursty, diurnal) and Alibaba-like (denser)
//!   arrival processes.
//! * [`generator`] — end-to-end trace generation with configurable duration,
//!   rate multiplier, and home-region distribution.
//! * [`stats`] — summary statistics used in tests and experiment logs.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod arrival;
pub mod generator;
pub mod job;
pub mod stats;
pub mod workload;

pub use arrival::{ArrivalModel, TraceKind};
pub use generator::{TraceConfig, TraceGenerator};
pub use job::{JobId, JobSpec};
pub use stats::TraceStatistics;
pub use workload::{Benchmark, WorkloadProfile, ALL_BENCHMARKS};
