//! WaterWise: carbon- and water-footprint co-optimizing job scheduling for
//! geographically distributed data centers.
//!
//! This is the umbrella crate of the WaterWise workspace. It re-exports every
//! sub-crate so downstream users (and the examples and integration tests in
//! this repository) can depend on a single crate:
//!
//! * [`milp`] — mixed-integer linear programming solver (simplex + branch & bound).
//! * [`sustain`] — carbon and water footprint models (Eq. 1–6 of the paper).
//! * [`telemetry`] — region profiles and synthetic carbon/water intensity series.
//! * [`traces`] — Borg-like and Alibaba-like workload trace generators.
//! * [`cluster`] — discrete-event geo-distributed data-center simulator.
//! * [`core`] — the WaterWise scheduler, baselines, and experiment runner.
//! * [`service`] — online placement front-end: live request ingestion into
//!   the engine over in-process channels or line-delimited-JSON TCP.
//!
//! # Quickstart
//!
//! ```
//! use waterwise::core::experiment::{Campaign, CampaignConfig, SchedulerKind};
//!
//! let config = CampaignConfig::small_demo(42);
//! let outcome = Campaign::new(config).run(SchedulerKind::WaterWise).unwrap();
//! assert!(outcome.summary.total_jobs > 0);
//! ```

pub use waterwise_cluster as cluster;
pub use waterwise_core as core;
pub use waterwise_milp as milp;
pub use waterwise_service as service;
pub use waterwise_sustain as sustain;
pub use waterwise_telemetry as telemetry;
pub use waterwise_traces as traces;

/// Semantic version of the WaterWise workspace.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
